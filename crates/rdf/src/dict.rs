//! Term dictionary: interning of [`Term`]s to dense `u32` ids.
//!
//! Each endpoint's store owns one dictionary. All query processing inside a
//! store happens on ids; terms are materialized only at the federation
//! boundary (results shipped between endpoints and the federator are terms,
//! since each endpoint has its own id space — exactly like real federated
//! SPARQL, where endpoints exchange lexical values).
//!
//! Beyond the per-store dictionaries, the federator's operators build
//! short-lived *query-scoped* dictionaries: a join, `DISTINCT`, `MINUS`,
//! or found-bindings merge interns the terms it touches once and then
//! works entirely on fixed-width ids — hashing and comparing `u32`s
//! instead of strings — materializing terms again only when producing its
//! output. The [`Dictionary::encode_slot`]/[`Dictionary::decode_slot`]
//! helpers cover the optionally-bound cells those operators deal in.

use crate::fxhash::FxHashMap;
use crate::term::Term;

/// A dense identifier for an interned term. `0` is a valid id.
pub type TermId = u32;

/// Fixed-width encoding of an optionally-bound solution cell:
/// `0` = unbound, anything else = [`TermId`] + 1. Equality of slots is
/// equality of cells, provided both were encoded by the *same*
/// dictionary.
pub type SlotId = u32;

/// The [`SlotId`] of an unbound cell.
pub const UNBOUND: SlotId = 0;

/// An interning dictionary mapping [`Term`] ↔ [`TermId`].
///
/// Lookup by term is hash-based; lookup by id is a direct vector index.
/// Ids are handed out contiguously starting at 0, so they can be used as
/// indexes into side arrays (e.g. per-term statistics).
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: FxHashMap<Term, TermId>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its id. Idempotent.
    pub fn encode(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = self.terms.len() as TermId;
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// Look up the id of an already-interned term, without interning.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Resolve an id back to its term. Panics on an id this dictionary never
    /// produced (that is a logic error, not a data error).
    pub fn decode(&self, id: TermId) -> &Term {
        &self.terms[id as usize]
    }

    /// Resolve an id if it is valid.
    pub fn try_decode(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id as usize)
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over all `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms.iter().enumerate().map(|(i, t)| (i as TermId, t))
    }

    /// Intern an optionally-bound cell as a fixed-width [`SlotId`].
    pub fn encode_slot(&mut self, cell: Option<&Term>) -> SlotId {
        match cell {
            None => UNBOUND,
            Some(t) => self.encode(t) + 1,
        }
    }

    /// Resolve a slot back to its cell, cloning the term. Panics on a
    /// slot this dictionary never produced (a logic error).
    pub fn decode_slot(&self, slot: SlotId) -> Option<Term> {
        if slot == UNBOUND {
            None
        } else {
            Some(self.decode(slot - 1).clone())
        }
    }

    /// Intern a whole solution row as fixed-width slots.
    pub fn encode_row(&mut self, row: &[Option<Term>]) -> Vec<SlotId> {
        row.iter().map(|c| self.encode_slot(c.as_ref())).collect()
    }

    /// Materialize a slot row back into terms.
    pub fn decode_row(&self, slots: &[SlotId]) -> Vec<Option<Term>> {
        slots.iter().map(|&s| self.decode_slot(s)).collect()
    }
}

/// A zero-clone interner over *borrowed* terms, for operators that hash
/// and compare cells but never decode ids back — key-only joins, `MINUS`
/// agreement scans. Unlike [`Dictionary`] (which owns two copies of every
/// interned term so it can decode), this holds only references into the
/// source rows: each distinct term is string-hashed once and nothing is
/// ever cloned.
#[derive(Debug, Default)]
pub struct KeyInterner<'a> {
    ids: FxHashMap<&'a Term, SlotId>,
}

impl<'a> KeyInterner<'a> {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an optionally-bound cell as a fixed-width [`SlotId`]:
    /// unbound maps to [`UNBOUND`], bound terms get dense ids from 1 up.
    /// Slot equality is cell equality, provided both slots came from the
    /// *same* interner.
    pub fn encode_slot(&mut self, cell: Option<&'a Term>) -> SlotId {
        match cell {
            None => UNBOUND,
            Some(t) => {
                let next = self.ids.len() as SlotId + 1;
                *self.ids.entry(t).or_insert(next)
            }
        }
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode(&Term::iri("http://x/a"));
        let b = d.encode(&Term::iri("http://x/b"));
        let a2 = d.encode(&Term::iri("http://x/a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_roundtrip() {
        let mut d = Dictionary::new();
        let terms = [
            Term::iri("http://x/a"),
            Term::literal("abc"),
            Term::bnode("b1"),
            Term::integer(5),
        ];
        let ids: Vec<_> = terms.iter().map(|t| d.encode(t)).collect();
        for (t, id) in terms.iter().zip(&ids) {
            assert_eq!(d.decode(*id), t);
            assert_eq!(d.get(t), Some(*id));
        }
    }

    #[test]
    fn get_does_not_intern() {
        let d = Dictionary::new();
        assert_eq!(d.get(&Term::iri("x")), None);
        assert!(d.is_empty());
    }

    #[test]
    fn ids_are_dense() {
        let mut d = Dictionary::new();
        for i in 0..100 {
            let id = d.encode(&Term::integer(i));
            assert_eq!(id, i as TermId);
        }
    }

    #[test]
    fn slot_rows_round_trip() {
        let mut d = Dictionary::new();
        let row = vec![Some(Term::iri("http://x/a")), None, Some(Term::integer(3))];
        let slots = d.encode_row(&row);
        assert_eq!(slots[1], UNBOUND);
        assert_ne!(slots[0], UNBOUND);
        assert_eq!(d.decode_row(&slots), row);
        // Same dictionary ⇒ same slots for equal cells.
        assert_eq!(d.encode_row(&row), slots);
    }

    #[test]
    fn literals_distinct_by_datatype_and_lang() {
        let mut d = Dictionary::new();
        let a = d.encode(&Term::literal("x"));
        let b = d.encode(&Term::Literal(crate::Literal::typed(
            "x",
            crate::vocab::xsd::STRING,
        )));
        let c = d.encode(&Term::Literal(crate::Literal::lang("x", "en")));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }
}
