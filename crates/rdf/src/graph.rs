//! A simple in-memory graph: the exchange format between generators,
//! parsers, and stores.

use crate::term::Term;
use crate::triple::Triple;

/// An in-memory bag of triples with convenience builders.
///
/// `Graph` is *not* a query structure — it exists so that data generators
/// and parsers have a uniform product to hand to
/// `lusail_store::Store::load`. Duplicate triples are preserved here and
/// deduplicated by the store's set-based indexes.
#[derive(Debug, Default, Clone)]
pub struct Graph {
    triples: Vec<Triple>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one triple.
    pub fn insert(&mut self, triple: Triple) {
        self.triples.push(triple);
    }

    /// Add a triple from its three terms.
    pub fn add(&mut self, s: impl Into<Term>, p: impl Into<Term>, o: impl Into<Term>) {
        self.triples.push(Triple::new(s, p, o));
    }

    /// Add `(s, rdf:type, class)`.
    pub fn add_type(&mut self, s: impl Into<Term>, class: impl Into<String>) {
        self.add(
            s,
            Term::iri(crate::vocab::rdf::TYPE),
            Term::iri(class.into()),
        );
    }

    /// Number of triples (duplicates included).
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Iterate over the triples.
    pub fn iter(&self) -> std::slice::Iter<'_, Triple> {
        self.triples.iter()
    }

    /// Consume the graph, yielding its triples.
    pub fn into_triples(self) -> Vec<Triple> {
        self.triples
    }

    /// Borrow the triples as a slice.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Merge another graph into this one.
    pub fn extend(&mut self, other: Graph) {
        self.triples.extend(other.triples);
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        Graph {
            triples: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Graph {
    type Item = Triple;
    type IntoIter = std::vec::IntoIter<Triple>;
    fn into_iter(self) -> Self::IntoIter {
        self.triples.into_iter()
    }
}

impl<'a> IntoIterator for &'a Graph {
    type Item = &'a Triple;
    type IntoIter = std::slice::Iter<'a, Triple>;
    fn into_iter(self) -> Self::IntoIter {
        self.triples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;

    #[test]
    fn build_and_iterate() {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::literal("o"),
        );
        g.add_type(Term::iri("http://x/s"), vocab::ub::UNIVERSITY);
        assert_eq!(g.len(), 2);
        let preds: Vec<_> = g.iter().map(|t| t.predicate.clone()).collect();
        assert_eq!(preds[1], Term::iri(vocab::rdf::TYPE));
    }

    #[test]
    fn from_iterator_and_extend() {
        let g1: Graph = (0..3)
            .map(|i| Triple::iris(format!("http://x/{i}"), "http://x/p", "http://x/o"))
            .collect();
        let mut g2 = Graph::new();
        g2.extend(g1.clone());
        g2.extend(g1);
        assert_eq!(g2.len(), 6);
    }
}
