//! RDF triples.

use crate::term::Term;
use std::fmt;

/// An RDF triple: (subject, predicate, object).
///
/// We do not enforce RDF's positional restrictions (e.g. literals as
/// subjects) at the type level; generators and parsers only produce valid
/// triples, and keeping one `Term` type everywhere keeps the query engine
/// simple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    pub subject: Term,
    pub predicate: Term,
    pub object: Term,
}

impl Triple {
    /// Construct a triple from its three components.
    pub fn new(
        subject: impl Into<Term>,
        predicate: impl Into<Term>,
        object: impl Into<Term>,
    ) -> Self {
        Triple {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }

    /// Convenience constructor from three IRIs.
    pub fn iris(s: impl Into<String>, p: impl Into<String>, o: impl Into<String>) -> Self {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }
}

impl From<(Term, Term, Term)> for Triple {
    fn from((s, p, o): (Term, Term, Term)) -> Self {
        Triple {
            subject: s,
            predicate: p,
            object: o,
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_ntriples_form() {
        let t = Triple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::literal("o"),
        );
        assert_eq!(t.to_string(), "<http://x/s> <http://x/p> \"o\" .");
    }

    #[test]
    fn tuple_conversion() {
        let t: Triple = (Term::iri("a"), Term::iri("b"), Term::iri("c")).into();
        assert_eq!(t.predicate, Term::iri("b"));
    }
}
