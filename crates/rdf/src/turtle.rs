//! A Turtle-subset parser.
//!
//! Supports the constructs that appear in benchmark data and example files:
//!
//! * `@prefix p: <iri> .` declarations and `PREFIX` (SPARQL-style, no dot)
//! * prefixed names (`ub:advisor`), full IRIs, blank nodes (`_:b`)
//! * the `a` keyword for `rdf:type`
//! * predicate lists (`;`) and object lists (`,`)
//! * plain / typed / language-tagged literals, integers, decimals, booleans
//!
//! Not supported (not needed by any workload): collections `( … )`,
//! anonymous blank nodes `[ … ]`, base IRIs, and multiline literals.

use crate::graph::Graph;
use crate::term::{unescape_literal, Literal, Term};
use crate::vocab;
use std::collections::HashMap;

/// A Turtle parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurtleError {
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for TurtleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Turtle parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for TurtleError {}

/// Parse a Turtle-subset document into a [`Graph`].
pub fn parse(input: &str) -> Result<Graph, TurtleError> {
    Parser::new(input).parse_document()
}

struct Parser<'a> {
    s: &'a str,
    pos: usize,
    prefixes: HashMap<String, String>,
    graph: Graph,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            s,
            pos: 0,
            prefixes: HashMap::new(),
            graph: Graph::new(),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, TurtleError> {
        Err(TurtleError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }

    fn skip_trivia(&mut self) {
        loop {
            let rest = self.rest();
            let mut advanced = false;
            for c in rest.chars() {
                if c.is_whitespace() {
                    self.pos += c.len_utf8();
                    advanced = true;
                } else {
                    break;
                }
            }
            if self.rest().starts_with('#') {
                let nl = self
                    .rest()
                    .find('\n')
                    .map(|i| i + 1)
                    .unwrap_or(self.rest().len());
                self.pos += nl;
                advanced = true;
            }
            if !advanced {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn eat_keyword_ci(&mut self, kw: &str) -> bool {
        let rest = self.rest();
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_document(mut self) -> Result<Graph, TurtleError> {
        loop {
            self.skip_trivia();
            if self.rest().is_empty() {
                return Ok(self.graph);
            }
            if self.eat("@prefix") {
                self.parse_prefix(true)?;
            } else if self.rest().len() >= 6 && self.rest()[..6].eq_ignore_ascii_case("prefix") {
                self.eat_keyword_ci("prefix");
                self.parse_prefix(false)?;
            } else {
                self.parse_statement()?;
            }
        }
    }

    fn parse_prefix(&mut self, requires_dot: bool) -> Result<(), TurtleError> {
        self.skip_trivia();
        let rest = self.rest();
        let colon = match rest.find(':') {
            Some(i) => i,
            None => return self.err("expected ':' in prefix declaration"),
        };
        let name = rest[..colon].trim().to_string();
        self.pos += colon + 1;
        self.skip_trivia();
        let iri = self.parse_iri_ref()?;
        self.prefixes.insert(name, iri);
        self.skip_trivia();
        if requires_dot && !self.eat(".") {
            return self.err("expected '.' after @prefix");
        }
        // SPARQL-style PREFIX allows an optional dot; consume if present.
        if !requires_dot {
            self.skip_trivia();
            self.eat(".");
        }
        Ok(())
    }

    fn parse_iri_ref(&mut self) -> Result<String, TurtleError> {
        if !self.eat("<") {
            return self.err("expected '<'");
        }
        let rest = self.rest();
        let end = match rest.find('>') {
            Some(i) => i,
            None => return self.err("unterminated IRI"),
        };
        let iri = rest[..end].to_string();
        self.pos += end + 1;
        Ok(iri)
    }

    fn parse_statement(&mut self) -> Result<(), TurtleError> {
        let subject = self.parse_term()?;
        loop {
            self.skip_trivia();
            let predicate = if self.rest().starts_with('a')
                && self.rest()[1..]
                    .chars()
                    .next()
                    .is_none_or(|c| c.is_whitespace())
            {
                self.pos += 1;
                Term::iri(vocab::rdf::TYPE)
            } else {
                self.parse_term()?
            };
            loop {
                let object = self.parse_term()?;
                self.graph.insert(crate::Triple {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                self.skip_trivia();
                if !self.eat(",") {
                    break;
                }
            }
            self.skip_trivia();
            if self.eat(";") {
                self.skip_trivia();
                // Allow a trailing `;` before `.` as Turtle does.
                if self.rest().starts_with('.') {
                    break;
                }
                continue;
            }
            break;
        }
        self.skip_trivia();
        if !self.eat(".") {
            return self.err("expected '.' at end of statement");
        }
        Ok(())
    }

    fn parse_term(&mut self) -> Result<Term, TurtleError> {
        self.skip_trivia();
        let rest = self.rest();
        if rest.starts_with('<') {
            return Ok(Term::iri(self.parse_iri_ref()?));
        }
        if let Some(body) = rest.strip_prefix("_:") {
            let len = body
                .char_indices()
                .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_' || *c == '-'))
                .map(|(i, _)| i)
                .unwrap_or(body.len());
            if len == 0 {
                return self.err("empty blank node label");
            }
            let label = body[..len].to_string();
            self.pos += 2 + len;
            return Ok(Term::bnode(label));
        }
        if rest.starts_with('"') {
            return self.parse_literal();
        }
        if rest.starts_with("true") {
            self.pos += 4;
            return Ok(Term::Literal(Literal::typed("true", vocab::xsd::BOOLEAN)));
        }
        if rest.starts_with("false") {
            self.pos += 5;
            return Ok(Term::Literal(Literal::typed("false", vocab::xsd::BOOLEAN)));
        }
        if rest.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '+') {
            return self.parse_number();
        }
        self.parse_prefixed_name()
    }

    fn parse_number(&mut self) -> Result<Term, TurtleError> {
        let rest = self.rest();
        let len = rest
            .char_indices()
            .find(|(i, c)| {
                !(c.is_ascii_digit()
                    || *c == '.' && rest[i + 1..].starts_with(|d: char| d.is_ascii_digit())
                    || (*i == 0 && (*c == '-' || *c == '+'))
                    || *c == 'e'
                    || *c == 'E')
            })
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        let text = &rest[..len];
        self.pos += len;
        if text.contains(['.', 'e', 'E']) {
            match text.parse::<f64>() {
                Ok(_) => Ok(Term::Literal(Literal::typed(text, vocab::xsd::DECIMAL))),
                Err(_) => self.err(format!("bad numeric literal {text:?}")),
            }
        } else {
            match text.parse::<i64>() {
                Ok(_) => Ok(Term::Literal(Literal::typed(text, vocab::xsd::INTEGER))),
                Err(_) => self.err(format!("bad integer literal {text:?}")),
            }
        }
    }

    fn parse_literal(&mut self) -> Result<Term, TurtleError> {
        // rest() starts with '"'
        let body = &self.rest()[1..];
        let mut end = None;
        let mut escaped = false;
        for (i, c) in body.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = match end {
            Some(e) => e,
            None => return self.err("unterminated literal"),
        };
        let lexical = unescape_literal(&body[..end]);
        self.pos += 1 + end + 1;
        if self.eat("^^") {
            let dt = if self.rest().starts_with('<') {
                self.parse_iri_ref()?
            } else {
                match self.parse_prefixed_name()? {
                    Term::Iri(iri) => iri,
                    _ => return self.err("datatype must be an IRI"),
                }
            };
            return Ok(Term::Literal(Literal::typed(lexical, dt)));
        }
        if self.eat("@") {
            let rest = self.rest();
            let len = rest
                .char_indices()
                .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '-'))
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            if len == 0 {
                return self.err("empty language tag");
            }
            let lang = rest[..len].to_string();
            self.pos += len;
            return Ok(Term::Literal(Literal::lang(lexical, lang)));
        }
        Ok(Term::Literal(Literal::plain(lexical)))
    }

    fn parse_prefixed_name(&mut self) -> Result<Term, TurtleError> {
        let rest = self.rest();
        let len = rest
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_' || *c == '-' || *c == ':'))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        let name = &rest[..len];
        let colon = match name.find(':') {
            Some(i) => i,
            None => return self.err(format!("expected a term, found {name:?}")),
        };
        let (prefix, local) = (&name[..colon], &name[colon + 1..]);
        let ns = match self.prefixes.get(prefix) {
            Some(ns) => ns.clone(),
            None => return self.err(format!("undeclared prefix {prefix:?}")),
        };
        self.pos += len;
        Ok(Term::iri(format!("{ns}{local}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_with_prefixes_and_shortcuts() {
        let doc = r#"
@prefix ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> .
@prefix ex: <http://example.org/> .

ex:kim a ub:GraduateStudent ;
    ub:advisor ex:tim , ex:joy ;
    ub:takesCourse ex:course1 .
ex:tim ub:PhDDegreeFrom ex:mit .
"#;
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 5);
        assert!(g.iter().any(|t| t.predicate == Term::iri(vocab::rdf::TYPE)));
        assert!(g
            .iter()
            .any(|t| t.object == Term::iri("http://example.org/joy")));
    }

    #[test]
    fn parse_literals_and_numbers() {
        let doc = r#"
@prefix ex: <http://example.org/> .
ex:a ex:name "Alice" ; ex:age 30 ; ex:height 1.7 ; ex:active true ;
     ex:label "hallo"@de ; ex:code "X"^^ex:Code .
"#;
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 6);
        let age = g
            .iter()
            .find(|t| t.predicate == Term::iri("http://example.org/age"))
            .unwrap();
        assert_eq!(age.object.as_literal().unwrap().as_i64(), Some(30));
        let code = g
            .iter()
            .find(|t| t.predicate == Term::iri("http://example.org/code"))
            .unwrap();
        assert_eq!(
            code.object.as_literal().unwrap().datatype.as_deref(),
            Some("http://example.org/Code")
        );
    }

    #[test]
    fn sparql_style_prefix() {
        let doc = "PREFIX ex: <http://e/>\nex:s ex:p ex:o .";
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn undeclared_prefix_is_error() {
        assert!(parse("nope:s nope:p nope:o .").is_err());
    }

    #[test]
    fn comments_ignored() {
        let doc = "# header\n@prefix ex: <http://e/> . # trailing\nex:s ex:p ex:o . # done\n";
        assert_eq!(parse(doc).unwrap().len(), 1);
    }

    #[test]
    fn trailing_semicolon_allowed() {
        let doc = "@prefix ex: <http://e/> .\nex:s ex:p ex:o ; .";
        assert_eq!(parse(doc).unwrap().len(), 1);
    }
}
