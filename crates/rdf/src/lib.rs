//! # lusail-rdf
//!
//! The RDF data model substrate for the Lusail federated SPARQL engine.
//!
//! This crate provides:
//!
//! * [`Term`] — RDF terms (IRIs, blank nodes, and literals with optional
//!   datatype or language tag).
//! * [`Triple`] — an RDF triple of terms.
//! * [`Dictionary`] — a string-interning dictionary mapping terms to dense
//!   `u32` identifiers, which the store and join operators use so that all
//!   hot-path comparisons are integer comparisons.
//! * [`Graph`] — a simple in-memory bag of triples used as the
//!   exchange format between data generators, parsers, and stores.
//! * N-Triples and Turtle-subset parsing/serialization ([`ntriples`],
//!   [`turtle`]).
//! * [`fxhash`] — a small Fx-style hasher; dictionary ids dominate our hash
//!   keys and SipHash is needlessly slow for them.
//! * [`vocab`] — well-known namespaces used by the benchmark workloads.
//!
//! The crate has no dependencies and is deliberately small: everything that
//! needs to be fast operates on interned ids, not on these owned values.

pub mod dict;
pub mod fxhash;
pub mod graph;
pub mod ntriples;
pub mod term;
pub mod triple;
pub mod turtle;
pub mod vocab;

pub use dict::{Dictionary, TermId};
pub use graph::Graph;
pub use term::{Literal, Term};
pub use triple::Triple;
