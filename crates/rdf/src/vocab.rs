//! Well-known RDF namespaces and the benchmark vocabularies used throughout
//! the workloads.

/// Concatenate a namespace and a local name into a full IRI.
pub fn iri(ns: &str, local: &str) -> String {
    let mut s = String::with_capacity(ns.len() + local.len());
    s.push_str(ns);
    s.push_str(local);
    s
}

/// The RDF core vocabulary.
pub mod rdf {
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
}

/// RDF Schema.
pub mod rdfs {
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    pub const SEE_ALSO: &str = "http://www.w3.org/2000/01/rdf-schema#seeAlso";
    pub const SUBCLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
}

/// OWL.
pub mod owl {
    pub const NS: &str = "http://www.w3.org/2002/07/owl#";
    pub const SAME_AS: &str = "http://www.w3.org/2002/07/owl#sameAs";
}

/// XML Schema datatypes.
pub mod xsd {
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    pub const INT: &str = "http://www.w3.org/2001/XMLSchema#int";
    pub const LONG: &str = "http://www.w3.org/2001/XMLSchema#long";
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    pub const FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";

    /// True when `dt` is one of the XSD numeric datatypes.
    pub fn is_numeric(dt: &str) -> bool {
        matches!(dt, INTEGER | INT | LONG | DECIMAL | DOUBLE | FLOAT)
    }
}

/// The LUBM university benchmark ontology (`ub:`), as used in the paper's
/// running example (Figures 1, 2, 4, 6) and the LUBM experiments.
pub mod ub {
    pub const NS: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

    // Classes
    pub const UNIVERSITY: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#University";
    pub const DEPARTMENT: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#Department";
    pub const FULL_PROFESSOR: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#FullProfessor";
    pub const ASSOCIATE_PROFESSOR: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#AssociateProfessor";
    pub const ASSISTANT_PROFESSOR: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#AssistantProfessor";
    pub const GRADUATE_STUDENT: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#GraduateStudent";
    pub const UNDERGRADUATE_STUDENT: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#UndergraduateStudent";
    pub const GRADUATE_COURSE: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#GraduateCourse";
    pub const COURSE: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#Course";

    // Properties
    pub const ADVISOR: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor";
    pub const TEACHER_OF: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#teacherOf";
    pub const TAKES_COURSE: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#takesCourse";
    pub const PHD_DEGREE_FROM: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#PhDDegreeFrom";
    pub const UNDERGRAD_DEGREE_FROM: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#undergraduateDegreeFrom";
    pub const MASTERS_DEGREE_FROM: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#mastersDegreeFrom";
    pub const MEMBER_OF: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#memberOf";
    pub const SUB_ORGANIZATION_OF: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#subOrganizationOf";
    pub const WORKS_FOR: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#worksFor";
    pub const ADDRESS: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#address";
    pub const NAME: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#name";
    pub const EMAIL: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#emailAddress";
    pub const RESEARCH_INTEREST: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#researchInterest";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_concat() {
        assert_eq!(iri(rdf::NS, "type"), rdf::TYPE);
        assert_eq!(iri(ub::NS, "advisor"), ub::ADVISOR);
    }

    #[test]
    fn xsd_numeric() {
        assert!(xsd::is_numeric(xsd::INTEGER));
        assert!(xsd::is_numeric(xsd::DOUBLE));
        assert!(!xsd::is_numeric(xsd::STRING));
    }
}
