//! RDF terms: IRIs, blank nodes, and literals.

use std::fmt;

/// An RDF literal: a lexical form plus an optional datatype IRI or language
/// tag. Plain literals (no datatype, no language) are represented with both
/// fields `None`; consumers treat them as `xsd:string`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The lexical form, e.g. `"42"` or `"Cambridge, MA"`.
    pub lexical: String,
    /// Datatype IRI, e.g. `http://www.w3.org/2001/XMLSchema#integer`.
    pub datatype: Option<String>,
    /// BCP-47 language tag, e.g. `en`.
    pub language: Option<String>,
}

impl Literal {
    /// A plain (untyped, untagged) string literal.
    pub fn plain(lexical: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: None,
            language: None,
        }
    }

    /// A literal with an explicit datatype IRI.
    pub fn typed(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: Some(datatype.into()),
            language: None,
        }
    }

    /// A language-tagged string literal.
    pub fn lang(lexical: impl Into<String>, language: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: None,
            language: Some(language.into()),
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Literal::typed(value.to_string(), crate::vocab::xsd::INTEGER)
    }

    /// An `xsd:double` literal.
    pub fn double(value: f64) -> Self {
        Literal::typed(value.to_string(), crate::vocab::xsd::DOUBLE)
    }

    /// Try to interpret the lexical form as an integer. Works for any
    /// datatype whose lexical form parses as `i64` (SPARQL's numeric
    /// promotion is approximated by parsing).
    pub fn as_i64(&self) -> Option<i64> {
        self.lexical.trim().parse().ok()
    }

    /// Try to interpret the lexical form as a double.
    pub fn as_f64(&self) -> Option<f64> {
        self.lexical.trim().parse().ok()
    }

    /// True when the literal's datatype is one of the XSD numeric types, or
    /// when it is untyped but parses as a number.
    pub fn is_numeric(&self) -> bool {
        match &self.datatype {
            Some(dt) => crate::vocab::xsd::is_numeric(dt),
            None => self.as_f64().is_some(),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.lexical))?;
        if let Some(lang) = &self.language {
            write!(f, "@{lang}")?;
        } else if let Some(dt) = &self.datatype {
            write!(f, "^^<{dt}>")?;
        }
        Ok(())
    }
}

/// An RDF term. The three kinds follow the RDF 1.1 abstract syntax.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI, stored as its full string form without angle brackets.
    Iri(String),
    /// A blank node with its local label (no `_:` prefix).
    BlankNode(String),
    /// A literal.
    Literal(Literal),
}

impl Term {
    /// Construct an IRI term.
    pub fn iri(iri: impl Into<String>) -> Self {
        Term::Iri(iri.into())
    }

    /// Construct a blank-node term.
    pub fn bnode(label: impl Into<String>) -> Self {
        Term::BlankNode(label.into())
    }

    /// Construct a plain literal term.
    pub fn literal(lexical: impl Into<String>) -> Self {
        Term::Literal(Literal::plain(lexical))
    }

    /// Construct an `xsd:integer` literal term.
    pub fn integer(value: i64) -> Self {
        Term::Literal(Literal::integer(value))
    }

    /// The IRI string if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The literal if this term is a literal.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// True for IRI terms.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True for literal terms.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// True for blank-node terms.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::BlankNode(_))
    }

    /// The *authority* of an IRI term: scheme plus host, e.g.
    /// `http://dbpedia.org`. Used by the HiBISCuS-style baseline for
    /// authority-based source pruning. Returns `None` for non-IRI terms or
    /// IRIs without a `://`.
    pub fn authority(&self) -> Option<&str> {
        let iri = self.as_iri()?;
        let rest = iri.split_once("://").map(|(_, r)| r)?;
        let host_end = rest.find(['/', '#', '?']).unwrap_or(rest.len());
        let end = iri.len() - rest.len() + host_end;
        Some(&iri[..end])
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::BlankNode(label) => write!(f, "_:{label}"),
            Term::Literal(lit) => write!(f, "{lit}"),
        }
    }
}

/// Escape a literal's lexical form for N-Triples/SPARQL serialization.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Undo [`escape_literal`].
pub fn unescape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_constructors() {
        let plain = Literal::plain("hello");
        assert_eq!(plain.lexical, "hello");
        assert!(plain.datatype.is_none() && plain.language.is_none());

        let typed = Literal::integer(42);
        assert_eq!(typed.as_i64(), Some(42));
        assert!(typed.is_numeric());

        let tagged = Literal::lang("bonjour", "fr");
        assert_eq!(tagged.language.as_deref(), Some("fr"));
    }

    #[test]
    fn term_display_roundtrippable_forms() {
        assert_eq!(Term::iri("http://x/a").to_string(), "<http://x/a>");
        assert_eq!(Term::bnode("b0").to_string(), "_:b0");
        assert_eq!(Term::literal("hi").to_string(), "\"hi\"");
        assert_eq!(
            Term::Literal(Literal::lang("hi", "en")).to_string(),
            "\"hi\"@en"
        );
        assert_eq!(
            Term::integer(3).to_string(),
            "\"3\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }

    #[test]
    fn escape_roundtrip() {
        let nasty = "line1\nline2\t\"quoted\" back\\slash";
        assert_eq!(unescape_literal(&escape_literal(nasty)), nasty);
    }

    #[test]
    fn authority_extraction() {
        let t = Term::iri("http://dbpedia.org/resource/Berlin");
        assert_eq!(t.authority(), Some("http://dbpedia.org"));
        let t = Term::iri("http://example.com#frag");
        assert_eq!(t.authority(), Some("http://example.com"));
        let t = Term::iri("urn:uuid:123");
        assert_eq!(t.authority(), None);
        assert_eq!(Term::literal("x").authority(), None);
    }

    #[test]
    fn numeric_detection() {
        assert!(Literal::plain("3.5").is_numeric());
        assert!(!Literal::plain("abc").is_numeric());
        assert!(Literal::typed("7", crate::vocab::xsd::INT).is_numeric());
        assert!(!Literal::typed("7", "http://x/other").is_numeric());
    }
}
