//! The federation service: the full LADE/SAPE engine mounted behind the
//! HTTP server as a [`QueryBackend`].
//!
//! `lusail serve --federate` turns the one-shot `lusail query` pipeline
//! into a shared, long-lived service. Three concerns separate it from
//! simply calling the engine per request:
//!
//! * **Admission control** — a global [`MemoryPool`] is carved into
//!   per-query ledgers. A query only runs while it holds a ledger, so the
//!   sum of accounted intermediate state across all concurrent queries
//!   can never exceed the pool. When every ledger is out, a bounded
//!   admission queue briefly holds newcomers; beyond it (or past the wait
//!   budget) the service sheds with 503 + `Retry-After` instead of
//!   degrading everyone.
//! * **Per-client quotas** — each client (the `X-Client-Id` header, or
//!   the peer IP) gets a max-in-flight bound, answered with 429 when
//!   exhausted, so one chatty tenant cannot monopolize the ledgers.
//! * **A shared cache tier** — the engine's analysis cache (GJV checks,
//!   source selection, COUNT probes) is shared across all clients, and a
//!   [`ResultCache`] short-circuits repeated hot queries entirely: a hit
//!   is answered with zero outbound endpoint requests and without even
//!   carving a ledger, which keeps cached answers flowing while the pool
//!   is saturated. Degraded (partial / truncated) results are never
//!   cached — they describe an outage, not the data.

use crate::{Answer, ClientInfo, QueryBackend};
use lusail_core::{
    CacheLimits, EngineError, LusailEngine, MemoryPool, ResultCache, ResultPolicy, RunContext,
};
use lusail_federation::json;
use lusail_rdf::fxhash::FxHashMap;
use lusail_sparql::QueryForm;
use std::sync::Mutex;
use std::time::Duration;

/// Tuning knobs for the federation service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FederateConfig {
    /// Global memory pool shared by all concurrent queries.
    pub pool_bytes: usize,
    /// Per-query ledger carved from the pool; `pool_bytes /
    /// query_budget_bytes` queries can execute at once.
    pub query_budget_bytes: usize,
    /// Queries allowed to wait for a ledger before newcomers are shed.
    pub max_waiting: usize,
    /// How long an admitted waiter may sit in the queue before it is shed.
    pub queue_timeout: Duration,
    /// Max queries one client may have in flight (header identity or
    /// peer IP).
    pub client_max_inflight: usize,
    /// Per-query execution deadline.
    pub query_timeout: Option<Duration>,
    /// Per-query row ceiling threaded into the engine.
    pub max_result_rows: Option<usize>,
    /// Serve partial results (with warnings) when endpoints fail, instead
    /// of failing the whole query.
    pub partial: bool,
    /// Result-cache entry cap (LRU beyond it).
    pub result_cache_capacity: Option<usize>,
    /// TTL for both cache tiers; stale entries read as misses.
    pub cache_ttl: Option<Duration>,
    /// The `Retry-After` hint attached to 503/429 refusals.
    pub retry_after: Duration,
}

impl Default for FederateConfig {
    fn default() -> Self {
        FederateConfig {
            pool_bytes: 256 << 20,
            query_budget_bytes: 32 << 20,
            max_waiting: 16,
            queue_timeout: Duration::from_secs(2),
            client_max_inflight: 4,
            query_timeout: Some(Duration::from_secs(30)),
            max_result_rows: None,
            partial: false,
            result_cache_capacity: Some(128),
            cache_ttl: Some(Duration::from_secs(300)),
            retry_after: Duration::from_secs(1),
        }
    }
}

impl FederateConfig {
    /// The cache bounds both tiers share.
    pub fn cache_limits(&self) -> CacheLimits {
        CacheLimits {
            capacity: self.result_cache_capacity,
            ttl: self.cache_ttl,
        }
    }
}

/// Per-client accounting: the in-flight gauge enforcing the quota, plus
/// lifetime counters surfaced in `/stats`.
#[derive(Debug, Clone, Copy, Default)]
struct ClientLedger {
    inflight: usize,
    admitted: u64,
    rejected: u64,
    cache_hits: u64,
}

/// The engine-backed [`QueryBackend`] behind `serve --federate`.
pub struct FederationService {
    engine: LusailEngine,
    pool: MemoryPool,
    results: ResultCache,
    config: FederateConfig,
    clients: Mutex<FxHashMap<String, ClientLedger>>,
}

impl FederationService {
    /// Wrap `engine` as a service. For a bounded analysis cache, build the
    /// engine with [`LusailEngine::with_cache`] and
    /// [`FederateConfig::cache_limits`].
    pub fn new(engine: LusailEngine, config: FederateConfig) -> FederationService {
        let pool = MemoryPool::new(config.pool_bytes.max(1), config.query_budget_bytes.max(1));
        let results = ResultCache::new(config.cache_limits());
        FederationService {
            engine,
            pool,
            results,
            config,
            clients: Mutex::new(FxHashMap::default()),
        }
    }

    /// The engine executing admitted queries.
    pub fn engine(&self) -> &LusailEngine {
        &self.engine
    }

    /// The global admission pool.
    pub fn pool(&self) -> &MemoryPool {
        &self.pool
    }

    /// The shared query-result cache.
    pub fn results(&self) -> &ResultCache {
        &self.results
    }

    fn clients(&self) -> std::sync::MutexGuard<'_, FxHashMap<String, ClientLedger>> {
        self.clients.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Collapse whitespace so trivially-reformatted copies of one query
    /// share a result-cache entry.
    fn result_key(query: &str) -> String {
        query.split_whitespace().collect::<Vec<_>>().join(" ")
    }

    fn engine_error(&self, e: EngineError) -> Answer {
        match e {
            // The query's deadline elapsed somewhere in the federation.
            EngineError::Timeout(_) => Answer::error(504, e.to_string()),
            // The carved ledger was not enough under fail-fast: the
            // service is memory-saturated for queries of this shape, so
            // invite a retry rather than blaming the client.
            EngineError::BudgetExceeded { .. } => Answer::Error {
                status: 503,
                message: e.to_string(),
                retry_after: Some(self.config.retry_after),
            },
            EngineError::Unsupported(_) => Answer::error(400, e.to_string()),
            // An upstream endpoint failed and the policy was fail-fast.
            EngineError::Endpoint(_) => Answer::error(502, e.to_string()),
        }
    }

    fn answer_admitted(&self, query: &str, client: &ClientInfo) -> Answer {
        let parsed = match lusail_sparql::parse_query(query) {
            Ok(q) => q,
            Err(e) => return Answer::error(400, format!("malformed SPARQL query: {e}")),
        };
        let is_ask = matches!(parsed.form, QueryForm::Ask(_));
        let finish = |rel: lusail_sparql::Relation, warnings: Vec<String>| {
            if is_ask {
                Answer::Boolean(!rel.is_empty())
            } else {
                Answer::Solutions { rel, warnings }
            }
        };

        // Hot path: a cached result answers without carving a ledger, so
        // repeats keep flowing even while the pool is saturated.
        let key = Self::result_key(query);
        if let Some(rel) = self.results.get(&key) {
            if let Some(entry) = self.clients().get_mut(&client.id) {
                entry.cache_hits += 1;
            }
            return finish(rel, Vec::new());
        }

        // Admission: hold a ledger for the whole execution. Its Drop
        // returns the ledger and wakes one queued waiter.
        let pooled = match self
            .pool
            .carve_queued(self.config.max_waiting, self.config.queue_timeout)
        {
            Ok(p) => p,
            Err(rejection) => {
                return Answer::Error {
                    status: 503,
                    message: format!("service saturated: {rejection}"),
                    retry_after: Some(self.config.retry_after),
                }
            }
        };

        let ctx = RunContext::with_parts(
            if self.config.partial {
                ResultPolicy::Partial
            } else {
                ResultPolicy::FailFast
            },
            self.config.query_timeout,
            pooled.budget(),
            self.config.max_result_rows,
        );
        match self.engine.execute_profiled_with(&parsed, &ctx) {
            Ok((rel, profile)) => {
                let warnings: Vec<String> =
                    profile.warnings.iter().map(|w| w.to_string()).collect();
                // Only clean runs are cached: a degraded answer pinned in
                // the cache would keep serving the outage after recovery.
                if warnings.is_empty() {
                    self.results.put(key, rel.clone());
                }
                finish(rel, warnings)
            }
            Err(e) => self.engine_error(e),
        }
    }
}

/// Decrements a client's in-flight gauge even when answering panics or
/// returns early.
struct InflightGuard<'a> {
    service: &'a FederationService,
    id: &'a str,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if let Some(entry) = self.service.clients().get_mut(self.id) {
            entry.inflight = entry.inflight.saturating_sub(1);
        }
    }
}

impl QueryBackend for FederationService {
    fn answer(&self, query: &str, client: &ClientInfo) -> Answer {
        {
            let mut clients = self.clients();
            let entry = clients.entry(client.id.clone()).or_default();
            if entry.inflight >= self.config.client_max_inflight.max(1) {
                entry.rejected += 1;
                return Answer::Error {
                    status: 429,
                    message: format!(
                        "client {:?} already has {} queries in flight (limit {})",
                        client.id,
                        entry.inflight,
                        self.config.client_max_inflight.max(1)
                    ),
                    retry_after: Some(self.config.retry_after),
                };
            }
            entry.inflight += 1;
            entry.admitted += 1;
        }
        let _guard = InflightGuard {
            service: self,
            id: &client.id,
        };
        self.answer_admitted(query, client)
    }

    fn stats_json(&self) -> Option<String> {
        let pool = self.pool.stats();
        let results = self.results.stats();
        let analysis = self.engine.cache().stats();
        let sizes = self.engine.cache().sizes();
        let mut clients: Vec<(String, ClientLedger)> = self
            .clients()
            .iter()
            .map(|(id, c)| (id.clone(), *c))
            .collect();
        clients.sort_by(|a, b| a.0.cmp(&b.0));
        let clients_json = clients
            .iter()
            .map(|(id, c)| {
                format!(
                    "\"{}\":{{\"inflight\":{},\"admitted\":{},\"rejected\":{},\"cache_hits\":{}}}",
                    json::escape(id),
                    c.inflight,
                    c.admitted,
                    c.rejected,
                    c.cache_hits
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        Some(format!(
            "{{\"pool\":{{\"capacity\":{},\"ledger_bytes\":{},\"max_ledgers\":{},\"in_use\":{},\
             \"waiting\":{},\"carved\":{},\"queued\":{},\"shed\":{},\"peak_ledgers\":{}}},\
             \"result_cache\":{{\"entries\":{},\"hits\":{},\"misses\":{},\"insertions\":{},\
             \"evictions\":{},\"expirations\":{},\"invalidations\":{}}},\
             \"analysis_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"expirations\":{},\
             \"entries\":[{},{},{}]}},\"clients\":{{{}}}}}",
            self.pool.capacity(),
            self.pool.ledger_bytes(),
            self.pool.max_ledgers(),
            pool.in_use,
            pool.waiting,
            pool.carved,
            pool.queued,
            pool.shed,
            pool.peak_ledgers,
            results.entries,
            results.hits,
            results.misses,
            results.insertions,
            results.evictions,
            results.expirations,
            results.invalidations,
            analysis.hits,
            analysis.misses,
            analysis.evictions,
            analysis.expirations,
            sizes.0,
            sizes.1,
            sizes.2,
            clients_json,
        ))
    }

    fn invalidate_caches(&self) -> bool {
        self.engine.cache().clear();
        self.results.invalidate();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_core::LusailConfig;
    use lusail_federation::{Federation, NetworkProfile, SimulatedEndpoint};
    use lusail_rdf::{Graph, Term};
    use lusail_store::Store;
    use std::sync::Arc;

    fn service(config: FederateConfig) -> FederationService {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://x/a"),
            Term::iri("http://x/p"),
            Term::iri("http://x/b"),
        );
        g.add(
            Term::iri("http://x/b"),
            Term::iri("http://x/p"),
            Term::iri("http://x/c"),
        );
        let ep = SimulatedEndpoint::new("ep0", Store::from_graph(&g), NetworkProfile::instant());
        let fed = Federation::new(vec![Arc::new(ep)]);
        FederationService::new(LusailEngine::new(fed, LusailConfig::default()), config)
    }

    fn client(id: &str) -> ClientInfo {
        ClientInfo { id: id.to_string() }
    }

    #[test]
    fn repeated_query_is_served_from_the_result_cache() {
        let svc = service(FederateConfig::default());
        let q = "SELECT ?s ?o WHERE { ?s <http://x/p> ?o }";
        let rows = |a: Answer| match a {
            Answer::Solutions { rel, warnings } => {
                assert!(warnings.is_empty(), "{warnings:?}");
                rel.len()
            }
            _ => panic!("expected solutions"),
        };
        assert_eq!(rows(svc.answer(q, &client("c1"))), 2);
        let before = svc.engine().federation().total_traffic().requests;
        // Different whitespace, same canonical query: zero new requests.
        assert_eq!(
            rows(svc.answer(
                "SELECT ?s ?o\nWHERE {\n ?s <http://x/p> ?o }",
                &client("c2")
            )),
            2
        );
        assert_eq!(
            svc.engine().federation().total_traffic().requests,
            before,
            "a cache hit must not touch any endpoint"
        );
        assert_eq!(svc.results().stats().hits, 1);

        // Explicit invalidation forces re-execution.
        assert!(svc.invalidate_caches());
        assert_eq!(rows(svc.answer(q, &client("c1"))), 2);
        assert!(svc.engine().federation().total_traffic().requests > before);
    }

    #[test]
    fn quota_rejects_only_the_noisy_client() {
        let svc = service(FederateConfig {
            client_max_inflight: 1,
            ..Default::default()
        });
        // Simulate an in-flight query by pre-loading the gauge.
        svc.clients()
            .entry("noisy".to_string())
            .or_default()
            .inflight = 1;
        match svc.answer("ASK { ?s ?p ?o }", &client("noisy")) {
            Answer::Error {
                status,
                retry_after,
                ..
            } => {
                assert_eq!(status, 429);
                assert!(retry_after.is_some());
            }
            _ => panic!("expected a quota rejection"),
        }
        // A different client is unaffected.
        match svc.answer("ASK { ?s ?p ?o }", &client("quiet")) {
            Answer::Boolean(b) => assert!(b),
            _ => panic!("expected an ASK verdict"),
        }
        let stats = svc.stats_json().expect("service reports stats");
        assert!(
            stats.contains("\"noisy\":{\"inflight\":1,\"admitted\":0,\"rejected\":1"),
            "{stats}"
        );
    }

    #[test]
    fn saturated_pool_sheds_with_503() {
        let svc = service(FederateConfig {
            pool_bytes: 1024,
            query_budget_bytes: 1024, // one ledger total
            max_waiting: 0,
            queue_timeout: Duration::from_millis(10),
            ..Default::default()
        });
        // Hold the only ledger so the next query cannot be admitted.
        let held = svc.pool().try_carve().expect("first carve succeeds");
        match svc.answer("ASK { ?s ?p ?o }", &client("c")) {
            Answer::Error {
                status,
                retry_after,
                message,
            } => {
                assert_eq!(status, 503, "{message}");
                assert!(retry_after.is_some());
            }
            _ => panic!("expected a shed"),
        }
        drop(held);
        assert!(svc.pool().stats().shed >= 1);
        // With the ledger back, the same query is admitted and runs.
        match svc.answer("ASK { ?s ?p ?o }", &client("c")) {
            Answer::Boolean(b) => assert!(b),
            _ => panic!("expected an ASK verdict"),
        }
    }
}
