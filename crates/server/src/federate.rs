//! The federation service: the full LADE/SAPE engine mounted behind the
//! HTTP server as a [`QueryBackend`].
//!
//! `lusail serve --federate` turns the one-shot `lusail query` pipeline
//! into a shared, long-lived service. Three concerns separate it from
//! simply calling the engine per request:
//!
//! * **Admission control** — a global [`MemoryPool`] is carved into
//!   per-query ledgers. A query only runs while it holds a ledger, so the
//!   sum of accounted intermediate state across all concurrent queries
//!   can never exceed the pool. When every ledger is out, a bounded
//!   admission queue briefly holds newcomers; beyond it (or past the wait
//!   budget) the service sheds with 503 + `Retry-After` instead of
//!   degrading everyone.
//! * **Per-client quotas** — each client (the `X-Client-Id` header, or
//!   the peer IP) gets a max-in-flight bound, answered with 429 when
//!   exhausted, so one chatty tenant cannot monopolize the ledgers.
//! * **A shared cache tier** — the engine's analysis cache (GJV checks,
//!   source selection, COUNT probes) is shared across all clients, and a
//!   [`ResultCache`] short-circuits repeated hot queries entirely: a hit
//!   is answered with zero outbound endpoint requests and without even
//!   carving a ledger, which keeps cached answers flowing while the pool
//!   is saturated. Degraded (partial / truncated) results are never
//!   cached — they describe an outage, not the data.

use crate::{Answer, ClientInfo, QueryBackend};
use lusail_core::{
    CacheLimits, EngineError, LusailEngine, MemoryBudget, MemoryPool, ResultCache, ResultPolicy,
    RunContext,
};
use lusail_federation::{json, CancelReason, CancelToken};
use lusail_rdf::fxhash::FxHashMap;
use lusail_sparql::QueryForm;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the federation service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FederateConfig {
    /// Global memory pool shared by all concurrent queries.
    pub pool_bytes: usize,
    /// Per-query ledger carved from the pool; `pool_bytes /
    /// query_budget_bytes` queries can execute at once.
    pub query_budget_bytes: usize,
    /// Queries allowed to wait for a ledger before newcomers are shed.
    pub max_waiting: usize,
    /// How long an admitted waiter may sit in the queue before it is shed.
    pub queue_timeout: Duration,
    /// Max queries one client may have in flight (header identity or
    /// peer IP).
    pub client_max_inflight: usize,
    /// Per-query execution deadline.
    pub query_timeout: Option<Duration>,
    /// Per-query row ceiling threaded into the engine.
    pub max_result_rows: Option<usize>,
    /// Serve partial results (with warnings) when endpoints fail, instead
    /// of failing the whole query.
    pub partial: bool,
    /// Result-cache entry cap (LRU beyond it).
    pub result_cache_capacity: Option<usize>,
    /// TTL for both cache tiers; stale entries read as misses.
    pub cache_ttl: Option<Duration>,
    /// The `Retry-After` hint attached to 503/429 refusals.
    pub retry_after: Duration,
    /// Extra slack past the query deadline before the lifecycle watchdog
    /// reaps a wedged query. A transport stuck in a read keeps its token
    /// honored even if it never reaches a cancellation point itself.
    pub watchdog_grace: Duration,
}

impl Default for FederateConfig {
    fn default() -> Self {
        FederateConfig {
            pool_bytes: 256 << 20,
            query_budget_bytes: 32 << 20,
            max_waiting: 16,
            queue_timeout: Duration::from_secs(2),
            client_max_inflight: 4,
            query_timeout: Some(Duration::from_secs(30)),
            max_result_rows: None,
            partial: false,
            result_cache_capacity: Some(128),
            cache_ttl: Some(Duration::from_secs(300)),
            retry_after: Duration::from_secs(1),
            watchdog_grace: Duration::from_secs(2),
        }
    }
}

impl FederateConfig {
    /// The cache bounds both tiers share.
    pub fn cache_limits(&self) -> CacheLimits {
        CacheLimits {
            capacity: self.result_cache_capacity,
            ttl: self.cache_ttl,
        }
    }
}

/// Per-client accounting: the in-flight gauge enforcing the quota, plus
/// lifetime counters surfaced in `/stats`.
#[derive(Debug, Clone, Copy, Default)]
struct ClientLedger {
    inflight: usize,
    admitted: u64,
    rejected: u64,
    cache_hits: u64,
}

/// One in-flight query as the supervisor sees it.
#[derive(Debug, Clone)]
struct QueryEntry {
    client: String,
    /// "waiting" (queued for a ledger) or "executing".
    phase: &'static str,
    started: Instant,
    /// Absolute execution deadline, when the service configures one. The
    /// watchdog only reaps past `deadline + watchdog_grace`.
    deadline: Option<Instant>,
    token: CancelToken,
    /// The carved ledger, for live accounted-bytes reporting. `None`
    /// while still waiting for admission.
    memory: Option<MemoryBudget>,
}

/// Lifecycle counters surfaced in the stats `"lifecycle"` section.
#[derive(Debug, Default)]
struct LifecycleStats {
    cancelled_client_disconnected: AtomicU64,
    cancelled_admin: AtomicU64,
    cancelled_watchdog: AtomicU64,
    cancelled_draining: AtomicU64,
    watchdog_reaps: AtomicU64,
    panics_contained: AtomicU64,
    drains: AtomicU64,
    drain_force_cancelled: AtomicU64,
}

impl LifecycleStats {
    fn count_cancelled(&self, reason: CancelReason) {
        let counter = match reason {
            CancelReason::ClientDisconnected => &self.cancelled_client_disconnected,
            CancelReason::AdminCancelled => &self.cancelled_admin,
            CancelReason::WatchdogReaped => &self.cancelled_watchdog,
            CancelReason::ServerDraining => &self.cancelled_draining,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// The shared supervision state: the per-query registry the watchdog
/// scans, admin cancels look up, and `GET /queries` renders. Lives in an
/// `Arc` so the watchdog thread can outlast any one borrow of the service.
#[derive(Debug)]
struct Supervisor {
    queries: Mutex<FxHashMap<u64, QueryEntry>>,
    next_id: AtomicU64,
    lifecycle: LifecycleStats,
    /// Watchdog shutdown latch: flag under the mutex, condvar to cut the
    /// scan interval short on drop.
    stop: Mutex<bool>,
    tick: Condvar,
}

impl Supervisor {
    fn new() -> Supervisor {
        Supervisor {
            queries: Mutex::new(FxHashMap::default()),
            next_id: AtomicU64::new(1),
            lifecycle: LifecycleStats::default(),
            stop: Mutex::new(false),
            tick: Condvar::new(),
        }
    }

    fn queries(&self) -> std::sync::MutexGuard<'_, FxHashMap<u64, QueryEntry>> {
        self.queries.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Register a query; the returned guard deregisters on drop — also on
    /// panic, so a crashed query never leaves a ghost entry pinning the
    /// registry.
    fn register(self: &Arc<Self>, entry: QueryEntry) -> RegisteredQuery {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.queries().insert(id, entry);
        RegisteredQuery {
            supervisor: Arc::clone(self),
            id,
        }
    }

    /// One watchdog sweep: trip the token of every query past its
    /// deadline plus `grace`. Returns how many were reaped now.
    fn reap_overdue(&self, grace: Duration) -> u64 {
        let now = Instant::now();
        let mut reaped = 0;
        for entry in self.queries().values() {
            let Some(deadline) = entry.deadline else {
                continue;
            };
            if now >= deadline + grace && entry.token.cancel(CancelReason::WatchdogReaped) {
                reaped += 1;
            }
        }
        if reaped > 0 {
            self.lifecycle
                .watchdog_reaps
                .fetch_add(reaped, Ordering::Relaxed);
        }
        reaped
    }

    /// The watchdog loop: sweep every `interval` until `stop` is set.
    fn watch(&self, grace: Duration, interval: Duration) {
        let mut stopped = self.stop.lock().unwrap_or_else(|p| p.into_inner());
        while !*stopped {
            self.reap_overdue(grace);
            let (guard, _) = self
                .tick
                .wait_timeout(stopped, interval)
                .unwrap_or_else(|p| p.into_inner());
            stopped = guard;
        }
    }

    fn stop_watching(&self) {
        *self.stop.lock().unwrap_or_else(|p| p.into_inner()) = true;
        self.tick.notify_all();
    }
}

/// RAII registry membership for one query (see [`Supervisor::register`]).
struct RegisteredQuery {
    supervisor: Arc<Supervisor>,
    id: u64,
}

impl RegisteredQuery {
    /// Flip the entry to "executing" and attach its carved ledger.
    fn executing(&self, memory: MemoryBudget) {
        if let Some(entry) = self.supervisor.queries().get_mut(&self.id) {
            entry.phase = "executing";
            entry.memory = Some(memory);
        }
    }
}

impl Drop for RegisteredQuery {
    fn drop(&mut self) {
        self.supervisor.queries().remove(&self.id);
    }
}

/// The engine-backed [`QueryBackend`] behind `serve --federate`.
pub struct FederationService {
    engine: LusailEngine,
    pool: MemoryPool,
    results: ResultCache,
    config: FederateConfig,
    clients: Mutex<FxHashMap<String, ClientLedger>>,
    supervisor: Arc<Supervisor>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

impl FederationService {
    /// Wrap `engine` as a service. For a bounded analysis cache, build the
    /// engine with [`LusailEngine::with_cache`] and
    /// [`FederateConfig::cache_limits`].
    pub fn new(engine: LusailEngine, config: FederateConfig) -> FederationService {
        let pool = MemoryPool::new(config.pool_bytes.max(1), config.query_budget_bytes.max(1));
        let results = ResultCache::new(config.cache_limits());
        let supervisor = Arc::new(Supervisor::new());
        let watchdog = {
            let supervisor = Arc::clone(&supervisor);
            let grace = config.watchdog_grace;
            std::thread::Builder::new()
                .name("lusail-watchdog".to_string())
                .spawn(move || supervisor.watch(grace, Duration::from_millis(50)))
                .ok()
        };
        FederationService {
            engine,
            pool,
            results,
            config,
            clients: Mutex::new(FxHashMap::default()),
            supervisor,
            watchdog: Mutex::new(watchdog),
        }
    }

    /// The engine executing admitted queries.
    pub fn engine(&self) -> &LusailEngine {
        &self.engine
    }

    /// The global admission pool.
    pub fn pool(&self) -> &MemoryPool {
        &self.pool
    }

    /// The shared query-result cache.
    pub fn results(&self) -> &ResultCache {
        &self.results
    }

    fn clients(&self) -> std::sync::MutexGuard<'_, FxHashMap<String, ClientLedger>> {
        self.clients.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Collapse whitespace so trivially-reformatted copies of one query
    /// share a result-cache entry.
    fn result_key(query: &str) -> String {
        query.split_whitespace().collect::<Vec<_>>().join(" ")
    }

    fn engine_error(&self, e: EngineError) -> Answer {
        match e {
            // The query's deadline elapsed somewhere in the federation.
            EngineError::Timeout(_) => Answer::error(504, e.to_string()),
            // The query's cancel token tripped; the status names who
            // pulled the plug.
            EngineError::Cancelled(reason) => match reason {
                CancelReason::ClientDisconnected | CancelReason::AdminCancelled => {
                    Answer::error(499, e.to_string())
                }
                CancelReason::WatchdogReaped => Answer::error(504, e.to_string()),
                CancelReason::ServerDraining => Answer::Error {
                    status: 503,
                    message: e.to_string(),
                    retry_after: Some(self.config.retry_after),
                },
            },
            // The carved ledger was not enough under fail-fast: the
            // service is memory-saturated for queries of this shape, so
            // invite a retry rather than blaming the client.
            EngineError::BudgetExceeded { .. } => Answer::Error {
                status: 503,
                message: e.to_string(),
                retry_after: Some(self.config.retry_after),
            },
            EngineError::Unsupported(_) => Answer::error(400, e.to_string()),
            // An upstream endpoint failed and the policy was fail-fast.
            EngineError::Endpoint(_) => Answer::error(502, e.to_string()),
        }
    }

    fn answer_admitted(&self, query: &str, client: &ClientInfo, cancel: &CancelToken) -> Answer {
        let parsed = match lusail_sparql::parse_query(query) {
            Ok(q) => q,
            Err(e) => return Answer::error(400, format!("malformed SPARQL query: {e}")),
        };
        let is_ask = matches!(parsed.form, QueryForm::Ask(_));
        let finish = |rel: lusail_sparql::Relation, warnings: Vec<String>| {
            if is_ask {
                Answer::Boolean(!rel.is_empty())
            } else {
                Answer::Solutions { rel, warnings }
            }
        };

        // Hot path: a cached result answers without carving a ledger, so
        // repeats keep flowing even while the pool is saturated.
        let key = Self::result_key(query);
        if let Some(rel) = self.results.get(&key) {
            if let Some(entry) = self.clients().get_mut(&client.id) {
                entry.cache_hits += 1;
            }
            return finish(rel, Vec::new());
        }

        // From here the query is visible to the supervisor: the watchdog
        // can reap it, an admin can cancel it, and drain will sweep it.
        // The guard deregisters on every exit path, including panics.
        let registration = self.supervisor.register(QueryEntry {
            client: client.id.clone(),
            phase: "waiting",
            started: Instant::now(),
            deadline: self.config.query_timeout.map(|t| Instant::now() + t),
            token: cancel.clone(),
            memory: None,
        });

        // Admission: hold a ledger for the whole execution. Its Drop
        // returns the ledger and wakes one queued waiter.
        let pooled = match self
            .pool
            .carve_queued(self.config.max_waiting, self.config.queue_timeout)
        {
            Ok(p) => p,
            Err(rejection) => {
                return Answer::Error {
                    status: 503,
                    message: format!("service saturated: {rejection}"),
                    retry_after: Some(self.config.retry_after),
                }
            }
        };
        if let Some(reason) = cancel.reason() {
            self.supervisor.lifecycle.count_cancelled(reason);
            return self.engine_error(EngineError::Cancelled(reason));
        }
        registration.executing(pooled.budget());

        let ctx = RunContext::with_parts(
            if self.config.partial {
                ResultPolicy::Partial
            } else {
                ResultPolicy::FailFast
            },
            self.config.query_timeout,
            pooled.budget(),
            self.config.max_result_rows,
        )
        .with_cancel(cancel.clone());
        // `catch_unwind` contains an engine panic to this one query: the
        // ledger, quota slot, and registry entry all release via their
        // Drop guards, the client gets a 500, and the server keeps
        // serving everyone else.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.engine.execute_profiled_with(&parsed, &ctx)
        }));
        let executed = match outcome {
            Ok(r) => r,
            Err(_) => {
                self.supervisor
                    .lifecycle
                    .panics_contained
                    .fetch_add(1, Ordering::Relaxed);
                return Answer::error(500, "internal error: query evaluation panicked");
            }
        };
        if let Some(reason) = cancel.reason() {
            self.supervisor.lifecycle.count_cancelled(reason);
        }
        match executed {
            Ok((rel, profile)) => {
                let warnings: Vec<String> =
                    profile.warnings.iter().map(|w| w.to_string()).collect();
                // Only clean runs are cached: a degraded answer pinned in
                // the cache would keep serving the outage after recovery.
                if warnings.is_empty() && cancel.reason().is_none() {
                    self.results.put(key, rel.clone());
                }
                finish(rel, warnings)
            }
            Err(e) => self.engine_error(e),
        }
    }
}

impl Drop for FederationService {
    fn drop(&mut self) {
        self.supervisor.stop_watching();
        if let Ok(mut slot) = self.watchdog.lock() {
            if let Some(handle) = slot.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Decrements a client's in-flight gauge even when answering panics or
/// returns early.
struct InflightGuard<'a> {
    service: &'a FederationService,
    id: &'a str,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if let Some(entry) = self.service.clients().get_mut(self.id) {
            entry.inflight = entry.inflight.saturating_sub(1);
        }
    }
}

impl QueryBackend for FederationService {
    fn answer(&self, query: &str, client: &ClientInfo) -> Answer {
        self.answer_cancellable(query, client, &CancelToken::new())
    }

    fn answer_cancellable(&self, query: &str, client: &ClientInfo, cancel: &CancelToken) -> Answer {
        {
            let mut clients = self.clients();
            let entry = clients.entry(client.id.clone()).or_default();
            if entry.inflight >= self.config.client_max_inflight.max(1) {
                entry.rejected += 1;
                return Answer::Error {
                    status: 429,
                    message: format!(
                        "client {:?} already has {} queries in flight (limit {})",
                        client.id,
                        entry.inflight,
                        self.config.client_max_inflight.max(1)
                    ),
                    retry_after: Some(self.config.retry_after),
                };
            }
            entry.inflight += 1;
            entry.admitted += 1;
        }
        let _guard = InflightGuard {
            service: self,
            id: &client.id,
        };
        self.answer_admitted(query, client, cancel)
    }

    fn queries_json(&self) -> Option<String> {
        let mut rows: Vec<(u64, QueryEntry)> = self
            .supervisor
            .queries()
            .iter()
            .map(|(id, entry)| (*id, entry.clone()))
            .collect();
        rows.sort_by_key(|(id, _)| *id);
        let body = rows
            .iter()
            .map(|(id, entry)| {
                let cancelled = match entry.token.reason() {
                    Some(reason) => format!("\"{}\"", reason.as_str()),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"id\":{},\"client\":\"{}\",\"phase\":\"{}\",\"elapsed_ms\":{},\
                     \"accounted_bytes\":{},\"cancelled\":{}}}",
                    id,
                    json::escape(&entry.client),
                    entry.phase,
                    entry.started.elapsed().as_millis(),
                    entry.memory.as_ref().map(|m| m.used()).unwrap_or(0),
                    cancelled,
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        Some(format!("{{\"queries\":[{body}]}}"))
    }

    fn cancel_query(&self, id: u64, reason: CancelReason) -> Option<bool> {
        let queries = self.supervisor.queries();
        let entry = queries.get(&id)?;
        Some(entry.token.cancel(reason))
    }

    fn drain(&self, reason: CancelReason) -> usize {
        self.supervisor
            .lifecycle
            .drains
            .fetch_add(1, Ordering::Relaxed);
        let cancelled = self
            .supervisor
            .queries()
            .values()
            .filter(|entry| entry.token.cancel(reason))
            .count();
        if cancelled > 0 {
            self.supervisor
                .lifecycle
                .drain_force_cancelled
                .fetch_add(cancelled as u64, Ordering::Relaxed);
        }
        cancelled
    }

    fn stats_json(&self) -> Option<String> {
        let pool = self.pool.stats();
        let results = self.results.stats();
        let analysis = self.engine.cache().stats();
        let sizes = self.engine.cache().sizes();
        let mut clients: Vec<(String, ClientLedger)> = self
            .clients()
            .iter()
            .map(|(id, c)| (id.clone(), *c))
            .collect();
        clients.sort_by(|a, b| a.0.cmp(&b.0));
        let clients_json = clients
            .iter()
            .map(|(id, c)| {
                format!(
                    "\"{}\":{{\"inflight\":{},\"admitted\":{},\"rejected\":{},\"cache_hits\":{}}}",
                    json::escape(id),
                    c.inflight,
                    c.admitted,
                    c.rejected,
                    c.cache_hits
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let life = &self.supervisor.lifecycle;
        let codec = self.engine.federation().total_codec().unwrap_or_default();
        let codec_endpoints = self
            .engine
            .federation()
            .codec_by_endpoint()
            .iter()
            .map(|(name, c)| {
                format!(
                    "\"{}\":{{\"negotiated\":\"{}\",\"binary_responses\":{},\"json_responses\":{},\
                     \"binary_bytes_in\":{},\"json_bytes_in\":{},\"dict_terms\":{},\"fallbacks\":{}}}",
                    json::escape(name),
                    c.negotiated(),
                    c.binary_responses,
                    c.json_responses,
                    c.binary_bytes_in,
                    c.json_bytes_in,
                    c.dict_terms,
                    c.fallbacks
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let integrity = self
            .engine
            .integrity()
            .snapshot()
            .iter()
            .map(|(name, s)| {
                format!(
                    "\"{}\":{{\"verifications\":{},\"truncations_detected\":{},\
                     \"pages_fetched\":{},\"rows_recovered\":{},\"count_divergences\":{},\
                     \"quarantine_entries\":{},\"quarantine_exits\":{},\"quarantined\":{},\
                     \"learned_cap\":{}}}",
                    json::escape(name),
                    s.verifications,
                    s.truncations_detected,
                    s.pages_fetched,
                    s.rows_recovered,
                    s.count_divergences,
                    s.quarantine_entries,
                    s.quarantine_exits,
                    s.quarantined,
                    s.learned_cap
                        .map(|c| c.to_string())
                        .unwrap_or_else(|| "null".to_string()),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        Some(format!(
            "{{\"pool\":{{\"capacity\":{},\"ledger_bytes\":{},\"max_ledgers\":{},\"in_use\":{},\
             \"waiting\":{},\"carved\":{},\"queued\":{},\"shed\":{},\"peak_ledgers\":{}}},\
             \"result_cache\":{{\"entries\":{},\"hits\":{},\"misses\":{},\"insertions\":{},\
             \"evictions\":{},\"expirations\":{},\"invalidations\":{}}},\
             \"analysis_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"expirations\":{},\
             \"entries\":[{},{},{}]}},\"clients\":{{{}}},\
             \"lifecycle\":{{\"inflight\":{},\"cancelled\":{{\"client_disconnected\":{},\
             \"admin_cancelled\":{},\"watchdog_reaped\":{},\"server_draining\":{}}},\
             \"watchdog_reaps\":{},\"panics_contained\":{},\"drains\":{},\
             \"drain_force_cancelled\":{}}},\
             \"codec\":{{\"negotiated\":\"{}\",\"binary_responses\":{},\"json_responses\":{},\
             \"binary_bytes_in\":{},\"json_bytes_in\":{},\"dict_terms\":{},\"fallbacks\":{},\
             \"endpoints\":{{{}}}}},\"integrity\":{{{}}}}}",
            self.pool.capacity(),
            self.pool.ledger_bytes(),
            self.pool.max_ledgers(),
            pool.in_use,
            pool.waiting,
            pool.carved,
            pool.queued,
            pool.shed,
            pool.peak_ledgers,
            results.entries,
            results.hits,
            results.misses,
            results.insertions,
            results.evictions,
            results.expirations,
            results.invalidations,
            analysis.hits,
            analysis.misses,
            analysis.evictions,
            analysis.expirations,
            sizes.0,
            sizes.1,
            sizes.2,
            clients_json,
            self.supervisor.queries().len(),
            life.cancelled_client_disconnected.load(Ordering::Relaxed),
            life.cancelled_admin.load(Ordering::Relaxed),
            life.cancelled_watchdog.load(Ordering::Relaxed),
            life.cancelled_draining.load(Ordering::Relaxed),
            life.watchdog_reaps.load(Ordering::Relaxed),
            life.panics_contained.load(Ordering::Relaxed),
            life.drains.load(Ordering::Relaxed),
            life.drain_force_cancelled.load(Ordering::Relaxed),
            codec.negotiated(),
            codec.binary_responses,
            codec.json_responses,
            codec.binary_bytes_in,
            codec.json_bytes_in,
            codec.dict_terms,
            codec.fallbacks,
            codec_endpoints,
            integrity,
        ))
    }

    fn invalidate_caches(&self) -> bool {
        self.engine.cache().clear();
        self.results.invalidate();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_core::LusailConfig;
    use lusail_federation::{
        FaultProfile, FaultyEndpoint, Federation, NetworkProfile, SimulatedEndpoint,
    };
    use lusail_rdf::{Graph, Term};
    use lusail_store::Store;
    use std::sync::Arc;

    fn fixture_graph() -> Graph {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://x/a"),
            Term::iri("http://x/p"),
            Term::iri("http://x/b"),
        );
        g.add(
            Term::iri("http://x/b"),
            Term::iri("http://x/p"),
            Term::iri("http://x/c"),
        );
        g
    }

    fn service(config: FederateConfig) -> FederationService {
        let ep = SimulatedEndpoint::new(
            "ep0",
            Store::from_graph(&fixture_graph()),
            NetworkProfile::instant(),
        );
        let fed = Federation::new(vec![Arc::new(ep)]);
        FederationService::new(LusailEngine::new(fed, LusailConfig::default()), config)
    }

    /// A service whose only endpoint injects `profile` faults; the
    /// returned handle lets the test clear them mid-run.
    fn faulty_service(
        config: FederateConfig,
        profile: FaultProfile,
    ) -> (FederationService, Arc<FaultyEndpoint>) {
        let inner = Arc::new(SimulatedEndpoint::new(
            "ep0",
            Store::from_graph(&fixture_graph()),
            NetworkProfile::instant(),
        ));
        let ep = Arc::new(FaultyEndpoint::new(inner, 42, profile));
        let fed = Federation::new(vec![Arc::clone(&ep) as _]);
        let svc = FederationService::new(LusailEngine::new(fed, LusailConfig::default()), config);
        (svc, ep)
    }

    fn client(id: &str) -> ClientInfo {
        ClientInfo { id: id.to_string() }
    }

    #[test]
    fn repeated_query_is_served_from_the_result_cache() {
        let svc = service(FederateConfig::default());
        let q = "SELECT ?s ?o WHERE { ?s <http://x/p> ?o }";
        let rows = |a: Answer| match a {
            Answer::Solutions { rel, warnings } => {
                assert!(warnings.is_empty(), "{warnings:?}");
                rel.len()
            }
            _ => panic!("expected solutions"),
        };
        assert_eq!(rows(svc.answer(q, &client("c1"))), 2);
        let before = svc.engine().federation().total_traffic().requests;
        // Different whitespace, same canonical query: zero new requests.
        assert_eq!(
            rows(svc.answer(
                "SELECT ?s ?o\nWHERE {\n ?s <http://x/p> ?o }",
                &client("c2")
            )),
            2
        );
        assert_eq!(
            svc.engine().federation().total_traffic().requests,
            before,
            "a cache hit must not touch any endpoint"
        );
        assert_eq!(svc.results().stats().hits, 1);

        // Explicit invalidation forces re-execution.
        assert!(svc.invalidate_caches());
        assert_eq!(rows(svc.answer(q, &client("c1"))), 2);
        assert!(svc.engine().federation().total_traffic().requests > before);
    }

    #[test]
    fn quota_rejects_only_the_noisy_client() {
        let svc = service(FederateConfig {
            client_max_inflight: 1,
            ..Default::default()
        });
        // Simulate an in-flight query by pre-loading the gauge.
        svc.clients()
            .entry("noisy".to_string())
            .or_default()
            .inflight = 1;
        match svc.answer("ASK { ?s ?p ?o }", &client("noisy")) {
            Answer::Error {
                status,
                retry_after,
                ..
            } => {
                assert_eq!(status, 429);
                assert!(retry_after.is_some());
            }
            _ => panic!("expected a quota rejection"),
        }
        // A different client is unaffected.
        match svc.answer("ASK { ?s ?p ?o }", &client("quiet")) {
            Answer::Boolean(b) => assert!(b),
            _ => panic!("expected an ASK verdict"),
        }
        let stats = svc.stats_json().expect("service reports stats");
        assert!(
            stats.contains("\"noisy\":{\"inflight\":1,\"admitted\":0,\"rejected\":1"),
            "{stats}"
        );
    }

    #[test]
    fn panicking_query_leaks_nothing_and_the_service_keeps_serving() {
        let (svc, faults) =
            faulty_service(FederateConfig::default(), FaultProfile::panics_on_select());
        match svc.answer("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }", &client("c")) {
            Answer::Error {
                status, message, ..
            } => {
                assert_eq!(status, 500, "{message}");
                assert!(message.contains("panicked"), "{message}");
            }
            _ => panic!("expected a contained panic"),
        }
        // RAII leak regression: the panic must release the pool ledger,
        // the per-client inflight slot, and the registry entry.
        assert_eq!(svc.pool().stats().in_use, 0, "ledger leaked on panic");
        assert_eq!(svc.supervisor.queries().len(), 0, "registry entry leaked");
        let stats = svc.stats_json().expect("stats");
        assert!(stats.contains("\"panics_contained\":1"), "{stats}");
        assert!(stats.contains("\"inflight\":0"), "{stats}");
        // With the faults cleared, the same client is served normally —
        // the panic poisoned nothing.
        faults.set_faults(FaultProfile::none());
        match svc.answer("ASK { ?s ?p ?o }", &client("c")) {
            Answer::Boolean(b) => assert!(b),
            _ => panic!("expected an ASK verdict after the panic"),
        }
        assert_eq!(svc.pool().stats().in_use, 0);
    }

    #[test]
    fn admin_cancel_trips_the_registered_token() {
        let svc = service(FederateConfig::default());
        let token = CancelToken::new();
        let registration = svc.supervisor.register(QueryEntry {
            client: "c1".to_string(),
            phase: "executing",
            started: Instant::now(),
            deadline: None,
            token: token.clone(),
            memory: None,
        });
        let id = registration.id;
        // The registry lists it…
        let listed = svc.queries_json().expect("registry json");
        assert!(listed.contains("\"client\":\"c1\""), "{listed}");
        assert!(listed.contains("\"phase\":\"executing\""), "{listed}");
        // …cancel trips exactly once…
        assert_eq!(
            svc.cancel_query(id, CancelReason::AdminCancelled),
            Some(true)
        );
        assert_eq!(
            svc.cancel_query(id, CancelReason::AdminCancelled),
            Some(false)
        );
        assert_eq!(token.reason(), Some(CancelReason::AdminCancelled));
        // …and an unknown id is distinguishable from a done one.
        assert_eq!(
            svc.cancel_query(id + 999, CancelReason::AdminCancelled),
            None
        );
        drop(registration);
        assert_eq!(svc.supervisor.queries().len(), 0);
    }

    #[test]
    fn watchdog_reaps_a_query_stuck_past_its_deadline() {
        let svc = service(FederateConfig {
            watchdog_grace: Duration::from_millis(20),
            ..Default::default()
        });
        let token = CancelToken::new();
        let _registration = svc.supervisor.register(QueryEntry {
            client: "wedged".to_string(),
            phase: "executing",
            started: Instant::now(),
            // Already past deadline + grace: the next sweep must reap it.
            deadline: Some(Instant::now() - Duration::from_secs(1)),
            token: token.clone(),
            memory: None,
        });
        let reaped = token.wait_timeout(Duration::from_secs(2));
        assert_eq!(reaped, Some(CancelReason::WatchdogReaped));
        let stats = svc.stats_json().expect("stats");
        assert!(stats.contains("\"watchdog_reaps\":1"), "{stats}");
    }

    #[test]
    fn drain_force_cancels_every_registered_query() {
        let svc = service(FederateConfig::default());
        let tokens: Vec<CancelToken> = (0..3).map(|_| CancelToken::new()).collect();
        let _registrations: Vec<RegisteredQuery> = tokens
            .iter()
            .enumerate()
            .map(|(i, token)| {
                svc.supervisor.register(QueryEntry {
                    client: format!("c{i}"),
                    phase: "executing",
                    started: Instant::now(),
                    deadline: None,
                    token: token.clone(),
                    memory: None,
                })
            })
            .collect();
        assert_eq!(svc.drain(CancelReason::ServerDraining), 3);
        for token in &tokens {
            assert_eq!(token.reason(), Some(CancelReason::ServerDraining));
        }
        // Draining again is idempotent: every token is already tripped.
        assert_eq!(svc.drain(CancelReason::ServerDraining), 0);
        let stats = svc.stats_json().expect("stats");
        assert!(stats.contains("\"drain_force_cancelled\":3"), "{stats}");
        assert!(stats.contains("\"drains\":2"), "{stats}");
    }

    #[test]
    fn cancelled_statuses_name_who_pulled_the_plug() {
        let svc = service(FederateConfig::default());
        let status_of =
            |reason: CancelReason| match svc.engine_error(EngineError::Cancelled(reason)) {
                Answer::Error { status, .. } => status,
                _ => panic!("expected an error answer"),
            };
        assert_eq!(status_of(CancelReason::ClientDisconnected), 499);
        assert_eq!(status_of(CancelReason::AdminCancelled), 499);
        assert_eq!(status_of(CancelReason::WatchdogReaped), 504);
        assert_eq!(status_of(CancelReason::ServerDraining), 503);
    }

    #[test]
    fn saturated_pool_sheds_with_503() {
        let svc = service(FederateConfig {
            pool_bytes: 1024,
            query_budget_bytes: 1024, // one ledger total
            max_waiting: 0,
            queue_timeout: Duration::from_millis(10),
            ..Default::default()
        });
        // Hold the only ledger so the next query cannot be admitted.
        let held = svc.pool().try_carve().expect("first carve succeeds");
        match svc.answer("ASK { ?s ?p ?o }", &client("c")) {
            Answer::Error {
                status,
                retry_after,
                message,
            } => {
                assert_eq!(status, 503, "{message}");
                assert!(retry_after.is_some());
            }
            _ => panic!("expected a shed"),
        }
        drop(held);
        assert!(svc.pool().stats().shed >= 1);
        // With the ledger back, the same query is admitted and runs.
        match svc.answer("ASK { ?s ?p ?o }", &client("c")) {
            Answer::Boolean(b) => assert!(b),
            _ => panic!("expected an ASK verdict"),
        }
    }
}
