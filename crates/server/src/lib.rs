//! # lusail-server
//!
//! A std-only SPARQL endpoint server: `std::net::TcpListener`, a bounded
//! worker-thread pool, and hand-rolled HTTP/1.1 — no external crates.
//!
//! The server implements the query half of the W3C SPARQL 1.1 Protocol:
//!
//! * `GET /sparql?query=…` (percent-encoded),
//! * `POST /sparql` with `Content-Type: application/sparql-query`,
//! * `POST /sparql` with `Content-Type: application/x-www-form-urlencoded`
//!   and a `query=` field,
//!
//! answering with SPARQL 1.1 JSON Results
//! (`application/sparql-results+json`, shared codec in
//! [`lusail_federation::results_json`]). `SELECT` solutions stream out
//! with chunked transfer encoding row by row — a large result never has
//! to be fully buffered as a document. `ASK` answers and errors use
//! `Content-Length`.
//!
//! Operationally it mirrors what the paper's deployments (Fuseki /
//! Virtuoso) impose on federated engines: a fixed pool of workers with a
//! bounded accept backlog (excess connections wait in the TCP queue), a
//! per-request read deadline against slow clients, a maximum accepted
//! query size (HTTP 413, like Virtuoso's URI-length rejections the paper
//! hits with FedX's bound joins), and HTTP keep-alive so a federated
//! client can reuse one connection for its whole subquery stream.
//!
//! The serving layer is decoupled from query evaluation through
//! [`QueryBackend`]: [`SparqlServer::bind`] serves a single [`Store`]
//! (one simulated endpoint), while [`SparqlServer::with_backend`] accepts
//! any backend — the federation service in `lusail-cli` plugs the whole
//! LADE/SAPE pipeline in here. Two operational routes ride along:
//! `GET /stats` (request counters split into served/shed/errors plus
//! whatever the backend reports) and `POST /cache/invalidate` (drops the
//! backend's shared caches, 404 when it has none). Clients are identified
//! by an `X-Client-Id` header, falling back to the peer IP address.
//!
//! ```no_run
//! use lusail_server::{ServerConfig, SparqlServer};
//! use lusail_store::Store;
//!
//! let store = Store::from_graph(&lusail_rdf::Graph::new());
//! let handle = SparqlServer::bind("127.0.0.1:0", store, ServerConfig::default())
//!     .unwrap()
//!     .spawn();
//! println!("serving on {}", handle.url());
//! handle.shutdown();
//! ```

pub mod federate;

use lusail_federation::http::percent_decode;
use lusail_federation::results_bin;
use lusail_federation::results_json;
use lusail_federation::{CancelReason, CancelToken};
use lusail_sparql::Relation;
use lusail_store::eval::QueryResult;
use lusail_store::{Evaluator, Store};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads handling connections (the server-side analogue of
    /// the paper's elastic request handlers).
    pub workers: usize,
    /// Accepted connections queued beyond the busy workers; further
    /// clients are turned away with HTTP 503 + `Retry-After` instead of
    /// piling up unboundedly.
    pub backlog: usize,
    /// Maximum accepted SPARQL query size in bytes (HTTP 413 beyond it).
    pub max_query_bytes: usize,
    /// Deadline for reading one full request off a connection. Also
    /// bounds how long an idle keep-alive connection is held open.
    pub read_deadline: Duration,
    /// Endpoint name echoed in JSON error bodies, so a federated client
    /// aggregating failures across many endpoints can tell them apart.
    pub name: String,
    /// The `Retry-After` hint sent with 503 responses when the worker
    /// pool and backlog are saturated.
    pub retry_after: Duration,
    /// Process-wide ceiling on rows streamed per response. A larger
    /// result is truncated at the cap with a warning in the response
    /// head, so one greedy query cannot monopolize the wire. `None`
    /// streams everything.
    pub max_result_rows: Option<usize>,
    /// How long [`ServerHandle::shutdown`] lets in-flight queries finish
    /// before force-cancelling the stragglers via the backend's
    /// [`QueryBackend::drain`].
    pub drain_timeout: Duration,
    /// Whether to honor the compact binary results codec when a client's
    /// `Accept` header asks for it. `false` makes the server answer every
    /// query in SPARQL JSON — emulating a foreign endpoint that never
    /// heard of the codec, which is how the federation's fallback path is
    /// exercised end to end.
    pub offer_binary: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            backlog: 8,
            max_query_bytes: 1 << 20,
            read_deadline: Duration::from_secs(30),
            name: "lusail".to_string(),
            retry_after: Duration::from_secs(1),
            max_result_rows: None,
            drain_timeout: Duration::from_secs(5),
            offer_binary: true,
        }
    }
}

/// Who is asking: the value of the `X-Client-Id` request header, or the
/// peer IP address when the header is absent. Backends use it for
/// per-client quotas and accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientInfo {
    pub id: String,
}

/// What a [`QueryBackend`] produced for one query.
pub enum Answer {
    /// An `ASK` verdict.
    Boolean(bool),
    /// `SELECT` solutions plus any degradation warnings (partial results,
    /// truncation); warnings stream in the response head before any row.
    Solutions {
        rel: Relation,
        warnings: Vec<String>,
    },
    /// A refusal or failure mapped to an HTTP status. `retry_after`
    /// becomes a `Retry-After` header (admission-control sheds set it).
    Error {
        status: u16,
        message: String,
        retry_after: Option<Duration>,
    },
}

impl Answer {
    /// An error answer with no `Retry-After` hint.
    pub fn error(status: u16, message: impl Into<String>) -> Answer {
        Answer::Error {
            status,
            message: message.into(),
            retry_after: None,
        }
    }
}

/// Query evaluation behind the HTTP layer. Implementations must tolerate
/// concurrent calls from every worker thread.
pub trait QueryBackend: Send + Sync + 'static {
    /// Evaluate `query` for `client` and say how to answer.
    fn answer(&self, query: &str, client: &ClientInfo) -> Answer;

    /// Like [`answer`](Self::answer), but under a [`CancelToken`] the
    /// server trips when the client disconnects mid-execution (and that
    /// admin cancels, the watchdog, and shutdown drain share). Backends
    /// without cooperative cancellation just ignore the token.
    fn answer_cancellable(&self, query: &str, client: &ClientInfo, cancel: &CancelToken) -> Answer {
        let _ = cancel;
        self.answer(query, client)
    }

    /// Backend-specific counters embedded in `GET /stats` under
    /// `"service"`. `None` renders as JSON `null`.
    fn stats_json(&self) -> Option<String> {
        None
    }

    /// The in-flight query registry behind `GET /queries`, as a JSON
    /// document. `None` means the backend keeps no registry (the route
    /// then answers 404).
    fn queries_json(&self) -> Option<String> {
        None
    }

    /// Cancel one registered query (`POST /queries/<id>/cancel`).
    /// `None` = no registry, or no in-flight query with that id (404);
    /// `Some(true)` = this call tripped its token; `Some(false)` = found
    /// but already cancelled.
    fn cancel_query(&self, id: u64, reason: CancelReason) -> Option<bool> {
        let _ = (id, reason);
        None
    }

    /// Force-cancel every in-flight query (the shutdown drain's last
    /// resort). Returns how many tokens this call tripped.
    fn drain(&self, reason: CancelReason) -> usize {
        let _ = reason;
        0
    }

    /// Drop any shared caches. Returns `false` when the backend has none
    /// (the route then answers 404).
    fn invalidate_caches(&self) -> bool {
        false
    }
}

/// The plain single-store backend behind [`SparqlServer::bind`]: parse,
/// evaluate, and guard against evaluator panics.
pub struct StoreBackend {
    store: Arc<Store>,
}

impl StoreBackend {
    pub fn new(store: Store) -> StoreBackend {
        StoreBackend {
            store: Arc::new(store),
        }
    }
}

impl QueryBackend for StoreBackend {
    fn answer(&self, query: &str, _client: &ClientInfo) -> Answer {
        let parsed = match lusail_sparql::parse_query(query) {
            Ok(q) => q,
            Err(e) => return Answer::error(400, format!("malformed SPARQL query: {e}")),
        };
        // An evaluator bug must come back as HTTP 500, not a dead
        // connection.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Evaluator::new(&self.store).query(&parsed)
        }));
        match result {
            Ok(QueryResult::Boolean(b)) => Answer::Boolean(b),
            Ok(QueryResult::Solutions(rel)) => Answer::Solutions {
                rel,
                warnings: Vec::new(),
            },
            Err(_) => Answer::error(500, "query evaluation failed"),
        }
    }
}

/// Request counters split by outcome, so saturation (sheds) is visible
/// separately from client mistakes (errors).
#[derive(Debug, Default)]
pub struct ServerStats {
    served: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
}

impl ServerStats {
    fn record(&self, status: u16) {
        let counter = if status < 400 {
            &self.served
        } else if status == 503 || status == 429 {
            &self.shed
        } else {
            &self.errors
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn counts(&self) -> RequestCounts {
        RequestCounts {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestCounts {
    /// Successful responses (2xx).
    pub served: u64,
    /// Load-shedding refusals: 503 (pool saturated) and 429 (quota).
    pub shed: u64,
    /// Every other failure (4xx/5xx).
    pub errors: u64,
}

impl RequestCounts {
    /// All responses written, regardless of outcome.
    pub fn total(&self) -> u64 {
        self.served + self.shed + self.errors
    }
}

/// A bound-but-not-yet-running server. [`SparqlServer::spawn`] starts the
/// accept loop and worker pool.
pub struct SparqlServer {
    listener: TcpListener,
    backend: Arc<dyn QueryBackend>,
    config: ServerConfig,
}

impl SparqlServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) serving
    /// `store`.
    pub fn bind(addr: &str, store: Store, config: ServerConfig) -> io::Result<SparqlServer> {
        Self::with_backend(addr, Arc::new(StoreBackend::new(store)), config)
    }

    /// Bind `addr` serving an arbitrary [`QueryBackend`] — this is how
    /// the federation service mounts the full engine behind the server.
    pub fn with_backend(
        addr: &str,
        backend: Arc<dyn QueryBackend>,
        config: ServerConfig,
    ) -> io::Result<SparqlServer> {
        Ok(SparqlServer {
            listener: TcpListener::bind(addr)?,
            backend,
            config,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Start the accept thread and worker pool.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());

        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(self.config.backlog.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let mut workers = Vec::with_capacity(self.config.workers.max(1));
        for _ in 0..self.config.workers.max(1) {
            let rx = Arc::clone(&conn_rx);
            let backend = Arc::clone(&self.backend);
            let config = self.config.clone();
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            workers.push(std::thread::spawn(move || loop {
                let stream = match rx.lock().expect("connection queue poisoned").recv() {
                    Ok(s) => s,
                    Err(_) => break, // accept loop gone: drain complete
                };
                serve_connection(stream, &backend, &config, &shutdown, &stats);
            }));
        }

        let listener = self.listener;
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_config = self.config.clone();
        let accept_stats = Arc::clone(&stats);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => match conn_tx.try_send(s) {
                        Ok(()) => {}
                        // Pool and backlog saturated: shed load with an
                        // explicit 503 + Retry-After instead of letting
                        // clients queue without bound. The write happens
                        // on the accept thread, so it must never block
                        // long; the body is a few hundred bytes at most.
                        Err(mpsc::TrySendError::Full(s)) => {
                            write_overloaded(&s, &accept_config, &accept_stats);
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => break,
                    },
                    Err(_) => continue,
                }
            }
            // Dropping conn_tx lets the workers drain and exit.
        });

        ServerHandle {
            addr,
            shutdown,
            stats,
            accept_thread,
            workers,
            backend: self.backend,
            drain_timeout: self.config.drain_timeout,
        }
    }
}

/// A running server; dropping it *without* calling
/// [`ServerHandle::shutdown`] detaches the threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    accept_thread: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    backend: Arc<dyn QueryBackend>,
    drain_timeout: Duration,
}

impl ServerHandle {
    /// The server's address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The endpoint URL clients should use.
    pub fn url(&self) -> String {
        format!("http://{}/sparql", self.addr)
    }

    /// Requests answered so far (any status, sheds included).
    pub fn requests_served(&self) -> u64 {
        self.stats().total()
    }

    /// Request counters split into served / shed / errors.
    pub fn stats(&self) -> RequestCounts {
        self.stats.counts()
    }

    /// Graceful shutdown as a *bounded* drain: stop accepting, give
    /// in-flight queries up to the configured `drain_timeout` to finish,
    /// then force-cancel the stragglers through the backend
    /// ([`QueryBackend::drain`] with [`CancelReason::ServerDraining`])
    /// and join every thread.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = self.accept_thread.join();
        let deadline = Instant::now() + self.drain_timeout;
        while Instant::now() < deadline && self.workers.iter().any(|w| !w.is_finished()) {
            std::thread::sleep(Duration::from_millis(10));
        }
        if self.workers.iter().any(|w| !w.is_finished()) {
            // The drain budget is spent: trip every registered query's
            // token so the stragglers abort at their next cancellation
            // point instead of holding shutdown hostage.
            self.backend.drain(CancelReason::ServerDraining);
        }
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// An HTTP-level rejection: status, reason, and whether the connection is
/// still usable afterwards (framing errors are not).
struct HttpReject {
    status: u16,
    message: String,
    recoverable: bool,
}

impl HttpReject {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpReject {
            status,
            message: message.into(),
            recoverable: true,
        }
    }

    fn fatal(status: u16, message: impl Into<String>) -> Self {
        HttpReject {
            status,
            message: message.into(),
            recoverable: false,
        }
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        415 => "Unsupported Media Type",
        429 => "Too Many Requests",
        499 => "Query Cancelled",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

/// The JSON error body: `{"error": …, "endpoint": …}`. Naming the endpoint
/// lets a federated client attribute the failure without relying on which
/// URL it happened to dial.
fn error_body(message: &str, endpoint: &str) -> String {
    format!(
        "{{\"error\":\"{}\",\"endpoint\":\"{}\"}}",
        lusail_federation::json::escape(message),
        lusail_federation::json::escape(endpoint)
    )
}

/// Turn away a connection the pool cannot absorb: 503 with a `Retry-After`
/// hint, written from the accept thread (bounded by a short write timeout
/// so a slow client cannot stall accepting).
fn write_overloaded(stream: &TcpStream, config: &ServerConfig, stats: &ServerStats) {
    stats.record(503);
    stream
        .set_write_timeout(Some(Duration::from_millis(250)))
        .ok();
    let body = error_body(
        &format!(
            "server overloaded: {} workers busy and {} connections queued",
            config.workers.max(1),
            config.backlog.max(1)
        ),
        &config.name,
    );
    let retry_after = config.retry_after.as_secs().max(1);
    let _ = (&mut &*stream).write_all(
        format!(
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
             Retry-After: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            retry_after,
            body.len(),
            body
        )
        .as_bytes(),
    );
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Serve one connection: a keep-alive loop of request → response.
fn serve_connection(
    stream: TcpStream,
    backend: &Arc<dyn QueryBackend>,
    config: &ServerConfig,
    shutdown: &AtomicBool,
    stats: &ServerStats,
) {
    stream.set_nodelay(true).ok();
    // The quota fallback identity when no X-Client-Id header is sent: the
    // peer IP (not the port — every connection from one host shares it).
    let peer = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let mut reader = RequestReader {
        stream: &stream,
        buf: Vec::new(),
        pos: 0,
    };
    loop {
        // Park in short slices until the next request's first byte shows
        // up, so an idle keep-alive connection never pins a worker across
        // shutdown or past the idle deadline.
        match reader.await_data(shutdown, config.read_deadline) {
            WaitOutcome::Data => {}
            WaitOutcome::Closed | WaitOutcome::Shutdown | WaitOutcome::TimedOut => break,
        }
        match read_request(&mut reader, config) {
            Ok(Some(request)) => {
                let client = ClientInfo {
                    id: request.client_id.clone().unwrap_or_else(|| peer.clone()),
                };
                if !handle_request(&stream, &request, backend, config, stats, &client) {
                    break;
                }
            }
            // Clean EOF between requests: client closed the connection.
            Ok(None) => break,
            Err(reject) => {
                stats.record(reject.status);
                let _ = write_error(&stream, &reject, false, &config.name);
                break;
            }
        }
    }
}

/// Dispatch one parsed request. Returns whether the connection may keep
/// serving further keep-alive requests.
fn handle_request(
    stream: &TcpStream,
    request: &Request,
    backend: &Arc<dyn QueryBackend>,
    config: &ServerConfig,
    stats: &ServerStats,
    client: &ClientInfo,
) -> bool {
    let keep_alive = request.keep_alive;
    let path = request.target.split('?').next().unwrap_or("");
    match path {
        "/stats" => {
            if request.method != "GET" {
                let reject = HttpReject::new(405, "use GET for /stats");
                stats.record(reject.status);
                return write_error(stream, &reject, keep_alive, &config.name).is_ok()
                    && keep_alive;
            }
            // Snapshot before recording so the body does not count itself.
            let body = stats_body(stats, backend, config);
            stats.record(200);
            write_json(stream, 200, &body, keep_alive).is_ok() && keep_alive
        }
        "/queries" => {
            if request.method != "GET" {
                let reject = HttpReject::new(405, "use GET for /queries");
                stats.record(reject.status);
                return write_error(stream, &reject, keep_alive, &config.name).is_ok()
                    && keep_alive;
            }
            match backend.queries_json() {
                Some(body) => {
                    stats.record(200);
                    write_json(stream, 200, &body, keep_alive).is_ok() && keep_alive
                }
                None => {
                    let reject = HttpReject::new(404, "this server keeps no query registry");
                    stats.record(reject.status);
                    write_error(stream, &reject, keep_alive, &config.name).is_ok() && keep_alive
                }
            }
        }
        _ if path.starts_with("/queries/") && path.ends_with("/cancel") => {
            if request.method != "POST" {
                let reject = HttpReject::new(405, "use POST for /queries/<id>/cancel");
                stats.record(reject.status);
                return write_error(stream, &reject, keep_alive, &config.name).is_ok()
                    && keep_alive;
            }
            let id_text = &path["/queries/".len()..path.len() - "/cancel".len()];
            let Ok(id) = id_text.parse::<u64>() else {
                let reject = HttpReject::new(400, format!("bad query id {id_text:?}"));
                stats.record(reject.status);
                return write_error(stream, &reject, keep_alive, &config.name).is_ok()
                    && keep_alive;
            };
            match backend.cancel_query(id, CancelReason::AdminCancelled) {
                Some(cancelled) => {
                    stats.record(200);
                    let body = format!("{{\"id\":{id},\"cancelled\":{cancelled}}}");
                    write_json(stream, 200, &body, keep_alive).is_ok() && keep_alive
                }
                None => {
                    let reject = HttpReject::new(404, format!("no in-flight query with id {id}"));
                    stats.record(reject.status);
                    write_error(stream, &reject, keep_alive, &config.name).is_ok() && keep_alive
                }
            }
        }
        "/cache/invalidate" => {
            if request.method != "POST" {
                let reject = HttpReject::new(405, "use POST for /cache/invalidate");
                stats.record(reject.status);
                return write_error(stream, &reject, keep_alive, &config.name).is_ok()
                    && keep_alive;
            }
            if backend.invalidate_caches() {
                stats.record(200);
                write_json(stream, 200, "{\"invalidated\":true}", keep_alive).is_ok() && keep_alive
            } else {
                let reject = HttpReject::new(404, "this server has no shared caches");
                stats.record(reject.status);
                write_error(stream, &reject, keep_alive, &config.name).is_ok() && keep_alive
            }
        }
        _ => match extract_query(request, config) {
            Ok(query_text) => {
                answer_query(
                    stream,
                    backend,
                    &query_text,
                    client,
                    keep_alive,
                    config.offer_binary && wants_binary(&request.accept),
                    config,
                    stats,
                )
                .is_ok()
                    && keep_alive
            }
            Err(reject) => {
                stats.record(reject.status);
                write_error(stream, &reject, keep_alive, &config.name).is_ok()
                    && reject.recoverable
                    && keep_alive
            }
        },
    }
}

/// The `GET /stats` body: server-level counters plus whatever the backend
/// wants to report (`null` for a plain store).
fn stats_body(
    stats: &ServerStats,
    backend: &Arc<dyn QueryBackend>,
    config: &ServerConfig,
) -> String {
    let counts = stats.counts();
    format!(
        "{{\"endpoint\":\"{}\",\"requests\":{{\"served\":{},\"shed\":{},\"errors\":{}}},\"service\":{}}}",
        lusail_federation::json::escape(&config.name),
        counts.served,
        counts.shed,
        counts.errors,
        backend.stats_json().unwrap_or_else(|| "null".to_string()),
    )
}

/// Write a small sized JSON response.
fn write_json(stream: &TcpStream, status: u16, body: &str, keep_alive: bool) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut out = io::BufWriter::new(stream);
    write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{}",
        status,
        status_text(status),
        body.len(),
        connection,
        body
    )?;
    out.flush()
}

/// One parsed HTTP request.
struct Request {
    method: String,
    /// Path with any query string, as sent.
    target: String,
    content_type: String,
    /// The `Accept` header, verbatim (empty when absent). Drives results
    /// codec negotiation: see [`wants_binary`].
    accept: String,
    /// The `X-Client-Id` header, when sent.
    client_id: Option<String>,
    body: Vec<u8>,
    keep_alive: bool,
}

/// Read one request. `Ok(None)` means the client closed the connection
/// cleanly before sending anything.
fn read_request(
    reader: &mut RequestReader<'_>,
    config: &ServerConfig,
) -> Result<Option<Request>, HttpReject> {
    let deadline = Instant::now() + config.read_deadline;
    // Generous framing cap: the query-size policy is enforced later with a
    // proper 413; this only stops unbounded header streams.
    let max_frame = config.max_query_bytes.saturating_mul(4).max(1 << 16);

    let request_line = match reader.read_line(deadline, max_frame) {
        Ok(line) => line,
        Err(ReadError::CleanEof) => return Ok(None),
        Err(e) => return Err(e.into_reject()),
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_string(), t.to_string(), v)
        }
        _ => {
            return Err(HttpReject::fatal(
                400,
                format!("malformed request line {request_line:?}"),
            ))
        }
    };
    // HTTP/1.0 defaults to close, 1.1 to keep-alive.
    let mut keep_alive = version != "HTTP/1.0";

    let mut content_length = 0usize;
    let mut content_type = String::new();
    let mut accept = String::new();
    let mut client_id = None;
    let mut expect_continue = false;
    let mut chunked = false;
    loop {
        let line = reader
            .read_line(deadline, max_frame)
            .map_err(|e| e.into_reject())?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpReject::fatal(400, format!("malformed header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| HttpReject::fatal(400, format!("bad Content-Length {value:?}")))?;
            }
            "content-type" => content_type = value.to_ascii_lowercase(),
            "accept" => accept = value.to_ascii_lowercase(),
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
            "expect" => expect_continue = value.eq_ignore_ascii_case("100-continue"),
            "transfer-encoding" => chunked = true,
            "x-client-id" => {
                if !value.is_empty() {
                    client_id = Some(value.to_string());
                }
            }
            _ => {}
        }
    }

    if chunked {
        // Simple servers may refuse chunked requests; queries are small.
        return Err(HttpReject::fatal(
            400,
            "chunked request bodies are not supported",
        ));
    }
    if content_length > config.max_query_bytes {
        return Err(HttpReject::fatal(
            413,
            format!(
                "request body of {content_length} bytes exceeds the {}-byte limit",
                config.max_query_bytes
            ),
        ));
    }
    if expect_continue && content_length > 0 {
        (&mut reader.stream)
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .map_err(|_| HttpReject::fatal(400, "client went away"))?;
    }
    let body = reader
        .read_exact_vec(content_length, deadline, max_frame)
        .map_err(|e| e.into_reject())?;
    Ok(Some(Request {
        method,
        target,
        content_type,
        accept,
        client_id,
        body,
        keep_alive,
    }))
}

/// Results codec negotiation: `true` when the client's `Accept` header
/// asks for [`results_bin::MEDIA_TYPE`] (with a non-zero q). Anything
/// else — no header, `*/*`, plain SPARQL-JSON — gets JSON, so a client
/// that never heard of the binary codec is entirely unaffected.
fn wants_binary(accept: &str) -> bool {
    accept.split(',').any(|item| {
        let mut parts = item.trim().split(';');
        let media = parts.next().unwrap_or("").trim();
        media.eq_ignore_ascii_case(results_bin::MEDIA_TYPE)
            && !parts.any(|p| {
                let p = p.trim();
                p.strip_prefix("q=")
                    .and_then(|q| q.trim().parse::<f32>().ok())
                    .is_some_and(|v| v == 0.0)
            })
    })
}

/// Apply the SPARQL Protocol rules to pull the query text out of a request.
fn extract_query(request: &Request, config: &ServerConfig) -> Result<String, HttpReject> {
    let query = match request.method.as_str() {
        "GET" => {
            let query_string = request.target.split_once('?').map(|(_, q)| q).unwrap_or("");
            form_field(query_string, "query")
                .ok_or_else(|| HttpReject::new(400, "missing query= parameter"))??
        }
        "POST" => {
            if request.content_type.starts_with("application/sparql-query") {
                String::from_utf8(request.body.clone())
                    .map_err(|_| HttpReject::new(400, "query body is not UTF-8"))?
            } else if request
                .content_type
                .starts_with("application/x-www-form-urlencoded")
            {
                let body = std::str::from_utf8(&request.body)
                    .map_err(|_| HttpReject::new(400, "form body is not UTF-8"))?;
                form_field(body, "query")
                    .ok_or_else(|| HttpReject::new(400, "missing query= field"))??
            } else {
                return Err(HttpReject::new(
                    415,
                    format!(
                        "unsupported Content-Type {:?}; use application/sparql-query or a \
                         query= form field",
                        request.content_type
                    ),
                ));
            }
        }
        other => {
            return Err(HttpReject::new(
                405,
                format!("method {other} not allowed; use GET or POST"),
            ))
        }
    };
    if query.len() > config.max_query_bytes {
        return Err(HttpReject::new(
            413,
            format!(
                "query of {} bytes exceeds the {}-byte limit",
                query.len(),
                config.max_query_bytes
            ),
        ));
    }
    Ok(query)
}

/// Find and decode `key` in an `application/x-www-form-urlencoded` string.
fn form_field(encoded: &str, key: &str) -> Option<Result<String, HttpReject>> {
    for pair in encoded.split('&') {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        if k == key {
            return Some(
                percent_decode(v, true)
                    .map_err(|e| HttpReject::new(400, format!("bad {key}= encoding: {e}"))),
            );
        }
    }
    None
}

/// Watches the client's half of the connection while its query executes:
/// an EOF (or hard error) on the socket trips the query's [`CancelToken`]
/// with [`CancelReason::ClientDisconnected`], so the backend stops issuing
/// outbound endpoint requests and frees its ledger instead of computing an
/// answer nobody will read. Dropping the monitor stops and joins it.
struct DisconnectMonitor {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl DisconnectMonitor {
    fn spawn(stream: &TcpStream, token: CancelToken) -> DisconnectMonitor {
        let stop = Arc::new(AtomicBool::new(false));
        let thread = match stream.try_clone() {
            Ok(peek_stream) => {
                let stop = Arc::clone(&stop);
                Some(std::thread::spawn(move || {
                    let mut probe = [0u8; 1];
                    loop {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        if peek_stream
                            .set_read_timeout(Some(Duration::from_millis(100)))
                            .is_err()
                        {
                            token.cancel(CancelReason::ClientDisconnected);
                            return;
                        }
                        match peek_stream.peek(&mut probe) {
                            // Orderly EOF: the client hung up mid-query.
                            Ok(0) => {
                                token.cancel(CancelReason::ClientDisconnected);
                                return;
                            }
                            // Pipelined bytes for the *next* request are
                            // already buffered: peek returns instantly, so
                            // pace the loop instead of spinning on them.
                            Ok(_) => std::thread::sleep(Duration::from_millis(50)),
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                                ) => {}
                            Err(_) => {
                                token.cancel(CancelReason::ClientDisconnected);
                                return;
                            }
                        }
                    }
                }))
            }
            // No second handle to watch with: run unsupervised.
            Err(_) => None,
        };
        DisconnectMonitor { stop, thread }
    }
}

impl Drop for DisconnectMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Evaluate the query through the backend and stream the response.
/// With `binary`, successful results go out in the negotiated compact
/// codec ([`results_bin`]); errors are always JSON.
#[allow(clippy::too_many_arguments)]
fn answer_query(
    stream: &TcpStream,
    backend: &Arc<dyn QueryBackend>,
    query_text: &str,
    client: &ClientInfo,
    keep_alive: bool,
    binary: bool,
    config: &ServerConfig,
    stats: &ServerStats,
) -> io::Result<()> {
    let name = config.name.as_str();
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let token = CancelToken::new();
    let answer = {
        // The monitor holds a cloned handle; it is stopped and joined
        // before any response byte is written.
        let _monitor = DisconnectMonitor::spawn(stream, token.clone());
        // A panicking backend must cost one 500, not the worker thread:
        // RAII guards inside the backend release its ledger/quota on
        // unwind, and the connection stays in its keep-alive loop.
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            backend.answer_cancellable(query_text, client, &token)
        }))
        .unwrap_or_else(|_| Answer::error(500, "internal error: query evaluation panicked"))
    };
    // Restore the blocking-read default the request reader expects.
    stream.set_read_timeout(None).ok();
    if token.reason() == Some(CancelReason::ClientDisconnected) {
        // Nobody is reading: count it and skip the write entirely.
        stats.record(499);
        return Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "client disconnected mid-query",
        ));
    }
    match answer {
        Answer::Error {
            status,
            message,
            retry_after,
        } => {
            stats.record(status);
            let body = error_body(&message, name);
            let retry_header = match retry_after {
                Some(d) => format!("Retry-After: {}\r\n", d.as_secs().max(1)),
                None => String::new(),
            };
            let mut out = io::BufWriter::new(stream);
            write!(
                out,
                "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\n{}Content-Length: {}\r\nConnection: {}\r\n\r\n{}",
                status,
                status_text(status),
                retry_header,
                body.len(),
                connection,
                body
            )?;
            out.flush()
        }
        Answer::Boolean(b) => {
            stats.record(200);
            let (media, body) = if binary {
                (results_bin::MEDIA_TYPE, results_bin::boolean_bin(b))
            } else {
                (
                    results_json::MEDIA_TYPE,
                    results_json::boolean_json(b).into_bytes(),
                )
            };
            let mut out = io::BufWriter::new(stream);
            write!(
                out,
                "HTTP/1.1 200 OK\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
                media,
                body.len(),
                connection,
            )?;
            out.write_all(&body)?;
            out.flush()
        }
        Answer::Solutions { rel, mut warnings } => {
            stats.record(200);
            // The server-side row ceiling, applied on top of whatever the
            // backend already enforced: the truncation is declared in the
            // response head (which streams first), so a client sees the
            // degradation before the rows, not after.
            let cap = config.max_result_rows.unwrap_or(usize::MAX);
            let rows = if rel.len() > cap {
                &rel.rows()[..cap]
            } else {
                rel.rows()
            };
            if rel.len() > cap {
                warnings.push(format!(
                    "{name}: result truncated to {cap} of {} rows by the server row cap",
                    rel.len()
                ));
            }
            // Honest truncation advertisement: unlike a silently-capping
            // public endpoint, this server *declares* the cut in a header
            // (`HttpEndpoint` consumes it as ground truth and pages the
            // rest back), so a federator never has to guess.
            let truncated_header = if rel.len() > cap {
                "X-Lusail-Truncated: true\r\n"
            } else {
                ""
            };
            if binary {
                // The same streaming shape as JSON — head, row chunks,
                // tail — just in the negotiated compact codec: each row
                // chunk carries any first-seen terms as dictionary
                // records followed by the fixed-width id tuple.
                let mut enc = results_bin::Encoder::new();
                let mut out = io::BufWriter::new(stream);
                write!(
                    out,
                    "HTTP/1.1 200 OK\r\nContent-Type: {}\r\n{}Transfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
                    results_bin::MEDIA_TYPE,
                    truncated_header,
                    connection
                )?;
                write_chunk(&mut out, &enc.head(rel.vars(), &warnings))?;
                for row in rows {
                    write_chunk(&mut out, &enc.row(row))?;
                }
                write_chunk(&mut out, &enc.tail())?;
                out.write_all(b"0\r\n\r\n")?;
                return out.flush();
            }
            let head = if warnings.is_empty() {
                results_json::head_json(rel.vars())
            } else {
                results_json::head_json_with_warnings(rel.vars(), &warnings)
            };
            let mut out = io::BufWriter::new(stream);
            write!(
                out,
                "HTTP/1.1 200 OK\r\nContent-Type: {}\r\n{}Transfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
                results_json::MEDIA_TYPE,
                truncated_header,
                connection
            )?;
            write_chunk(&mut out, head.as_bytes())?;
            for (i, row) in rows.iter().enumerate() {
                let mut piece = String::new();
                if i > 0 {
                    piece.push(',');
                }
                piece.push_str(&results_json::binding_json(rel.vars(), row));
                write_chunk(&mut out, piece.as_bytes())?;
            }
            write_chunk(&mut out, results_json::SOLUTIONS_TAIL.as_bytes())?;
            out.write_all(b"0\r\n\r\n")?;
            out.flush()
        }
    }
}

fn write_chunk(out: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(()); // an empty chunk would terminate the body
    }
    write!(out, "{:x}\r\n", data.len())?;
    out.write_all(data)?;
    out.write_all(b"\r\n")
}

fn write_error(
    stream: &TcpStream,
    reject: &HttpReject,
    keep_alive: bool,
    name: &str,
) -> io::Result<()> {
    let connection = if keep_alive && reject.recoverable {
        "keep-alive"
    } else {
        "close"
    };
    let body = error_body(&reject.message, name);
    let mut out = io::BufWriter::new(stream);
    write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{}",
        reject.status,
        status_text(reject.status),
        body.len(),
        connection,
        body
    )?;
    out.flush()
}

enum ReadError {
    CleanEof,
    UnexpectedEof,
    TimedOut,
    TooLarge,
    Io(io::Error),
}

impl ReadError {
    fn into_reject(self) -> HttpReject {
        match self {
            ReadError::CleanEof | ReadError::UnexpectedEof => {
                HttpReject::fatal(400, "connection closed mid-request")
            }
            ReadError::TimedOut => HttpReject::fatal(408, "request read deadline exceeded"),
            ReadError::TooLarge => HttpReject::fatal(413, "request too large"),
            ReadError::Io(e) => HttpReject::fatal(400, format!("read error: {e}")),
        }
    }
}

/// Buffered request reader with a per-request deadline. The buffer carries
/// over between keep-alive requests (a client may send the next request
/// eagerly).
struct RequestReader<'a> {
    stream: &'a TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

/// How waiting for the next keep-alive request ended.
enum WaitOutcome {
    /// Bytes are available: parse a request.
    Data,
    /// Orderly EOF: the client hung up between requests.
    Closed,
    /// The server is shutting down.
    Shutdown,
    /// The connection idled past the deadline.
    TimedOut,
}

impl RequestReader<'_> {
    fn await_data(&mut self, shutdown: &AtomicBool, idle_timeout: Duration) -> WaitOutcome {
        let deadline = Instant::now() + idle_timeout;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return WaitOutcome::Shutdown;
            }
            if self.pos < self.buf.len() {
                return WaitOutcome::Data; // pipelined bytes already buffered
            }
            if Instant::now() >= deadline {
                return WaitOutcome::TimedOut;
            }
            if self
                .stream
                .set_read_timeout(Some(Duration::from_millis(100)))
                .is_err()
            {
                return WaitOutcome::Closed;
            }
            let mut chunk = [0u8; 8192];
            match (&mut &*self.stream).read(&mut chunk) {
                Ok(0) => return WaitOutcome::Closed,
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return WaitOutcome::Data;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => return WaitOutcome::Closed,
            }
        }
    }

    fn fill(&mut self, deadline: Instant, max_frame: usize) -> Result<usize, ReadError> {
        if self.buf.len() > max_frame {
            return Err(ReadError::TooLarge);
        }
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(ReadError::TimedOut)?;
        self.stream
            .set_read_timeout(Some(remaining))
            .map_err(ReadError::Io)?;
        let mut chunk = [0u8; 8192];
        match (&mut &*self.stream).read(&mut chunk) {
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(n)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Err(ReadError::TimedOut)
            }
            Err(e) => Err(ReadError::Io(e)),
        }
    }

    fn read_line(&mut self, deadline: Instant, max_frame: usize) -> Result<String, ReadError> {
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let end = self.pos + nl;
                let mut line = &self.buf[self.pos..end];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                let text = String::from_utf8_lossy(line).into_owned();
                self.pos = end + 1;
                self.compact();
                return Ok(text);
            }
            if self.fill(deadline, max_frame)? == 0 {
                return if self.pos == self.buf.len() {
                    Err(ReadError::CleanEof)
                } else {
                    Err(ReadError::UnexpectedEof)
                };
            }
        }
    }

    fn read_exact_vec(
        &mut self,
        n: usize,
        deadline: Instant,
        max_frame: usize,
    ) -> Result<Vec<u8>, ReadError> {
        while self.buf.len() - self.pos < n {
            if self.fill(deadline, max_frame)? == 0 {
                return Err(ReadError::UnexpectedEof);
            }
        }
        let out = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n;
        self.compact();
        Ok(out)
    }

    /// Drop consumed bytes so long keep-alive sessions don't grow the
    /// buffer without bound.
    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_federation::http::percent_encode;
    use lusail_federation::{HttpConfig, HttpEndpoint, SparqlEndpoint};
    use lusail_rdf::{Graph, Term};
    use std::io::{BufRead, BufReader};

    fn test_store() -> Store {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://x/a"),
            Term::iri("http://x/p"),
            Term::iri("http://x/b"),
        );
        g.add(
            Term::iri("http://x/b"),
            Term::iri("http://x/p"),
            Term::iri("http://x/c"),
        );
        g.add(
            Term::iri("http://x/c"),
            Term::iri("http://x/label"),
            Term::literal("see"),
        );
        Store::from_graph(&g)
    }

    fn start(config: ServerConfig) -> ServerHandle {
        SparqlServer::bind("127.0.0.1:0", test_store(), config)
            .unwrap()
            .spawn()
    }

    /// Raw one-shot exchange; returns (status line, full response text).
    fn raw_roundtrip(addr: SocketAddr, request: &str) -> (String, String) {
        // No half-close: shutting down the write side mid-query reads as a
        // client disconnect (and cancels the query), exactly like hyper's
        // and Go's defaults. Requests carry `Connection: close` (or are
        // protocol errors the server closes on) so reads still terminate.
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(request.as_bytes()).unwrap();
        let mut text = String::new();
        sock.read_to_string(&mut text).unwrap();
        let status = text.lines().next().unwrap_or("").to_string();
        (status, text)
    }

    #[test]
    fn get_and_post_roundtrip_through_http_client() {
        let handle = start(ServerConfig::default());
        let q = lusail_sparql::parse_query("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }").unwrap();
        for use_get in [false, true] {
            let ep = HttpEndpoint::new("srv", &handle.url())
                .unwrap()
                .with_config(HttpConfig {
                    use_get,
                    ..Default::default()
                });
            let rel = ep.select(&q).unwrap();
            assert_eq!(rel.len(), 2, "use_get={use_get}");
        }
        let ask = lusail_sparql::parse_query("ASK { ?s <http://x/label> \"see\" }").unwrap();
        let ep = HttpEndpoint::new("srv", &handle.url()).unwrap();
        assert!(ep.ask(&ask).unwrap());
        assert!(handle.requests_served() >= 3);
        handle.shutdown();
    }

    #[test]
    fn keep_alive_reuses_one_connection() {
        let handle = start(ServerConfig::default());
        let body = "ASK { ?s ?p ?o }";
        let request = format!(
            "POST /sparql HTTP/1.1\r\nHost: h\r\nContent-Type: application/sparql-query\r\n\
             Content-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let mut sock = TcpStream::connect(handle.local_addr()).unwrap();
        let mut reader = BufReader::new(sock.try_clone().unwrap());
        for _ in 0..3 {
            sock.write_all(request.as_bytes()).unwrap();
            let mut status = String::new();
            reader.read_line(&mut status).unwrap();
            assert!(status.starts_with("HTTP/1.1 200"), "{status}");
            // Drain headers + sized body.
            let mut content_length = 0;
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                if let Some(v) = line
                    .trim()
                    .to_ascii_lowercase()
                    .strip_prefix("content-length:")
                {
                    content_length = v.trim().parse().unwrap();
                }
                if line.trim().is_empty() {
                    break;
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).unwrap();
        }
        drop(sock);
        assert_eq!(handle.requests_served(), 3);
        handle.shutdown();
    }

    #[test]
    fn form_encoded_post_is_accepted() {
        let handle = start(ServerConfig::default());
        let body = format!("other=1&query={}", percent_encode("ASK { ?s ?p ?o }"));
        let request = format!(
            "POST /sparql HTTP/1.1\r\nHost: h\r\nContent-Type: application/x-www-form-urlencoded\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let (status, text) = raw_roundtrip(handle.local_addr(), &request);
        assert!(status.contains("200"), "{text}");
        assert!(text.contains("\"boolean\":true"), "{text}");
        handle.shutdown();
    }

    #[test]
    fn protocol_rejections() {
        let handle = start(ServerConfig {
            max_query_bytes: 200,
            ..Default::default()
        });
        let addr = handle.local_addr();

        let cases: Vec<(String, &str)> = vec![
            // Not HTTP at all.
            ("garbage\r\n\r\n".to_string(), "400"),
            // Unsupported method.
            (
                "DELETE /sparql HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n".to_string(),
                "405",
            ),
            // GET without a query parameter.
            (
                "GET /sparql HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n".to_string(),
                "400",
            ),
            // POST with an unknown media type.
            (
                "POST /sparql HTTP/1.1\r\nHost: h\r\nContent-Type: text/csv\r\nContent-Length: 3\r\nConnection: close\r\n\r\nabc"
                    .to_string(),
                "415",
            ),
            // Malformed SPARQL.
            (
                "POST /sparql HTTP/1.1\r\nHost: h\r\nContent-Type: application/sparql-query\r\nContent-Length: 9\r\nConnection: close\r\n\r\nSELECT ?{"
                    .to_string(),
                "400",
            ),
            // Declared body larger than the limit.
            (
                "POST /sparql HTTP/1.1\r\nHost: h\r\nContent-Type: application/sparql-query\r\nContent-Length: 5000\r\nConnection: close\r\n\r\n"
                    .to_string(),
                "413",
            ),
            // Oversized query via GET.
            (
                format!(
                    "GET /sparql?query={} HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
                    percent_encode(&format!(
                        "SELECT * WHERE {{ ?s <http://x/{}> ?o }}",
                        "p".repeat(300)
                    ))
                ),
                "413",
            ),
        ];
        for (request, expected) in cases {
            let (status, text) = raw_roundtrip(addr, &request);
            assert!(
                status.contains(expected),
                "request {:?} → {status} (wanted {expected})\n{text}",
                request.lines().next().unwrap_or("")
            );
        }
        handle.shutdown();
    }

    #[test]
    fn saturated_pool_sheds_load_with_503_and_retry_after() {
        // One worker, backlog of one: the worker parks on a held-open
        // connection, a second connection fills the queue, so a third
        // must be turned away with 503 + Retry-After naming the endpoint.
        let handle = SparqlServer::bind(
            "127.0.0.1:0",
            test_store(),
            ServerConfig {
                workers: 1,
                backlog: 1,
                name: "ep-under-test".to_string(),
                retry_after: Duration::from_secs(2),
                ..Default::default()
            },
        )
        .unwrap()
        .spawn();
        let addr = handle.local_addr();

        // Occupy the worker and fill the queue with idle connections.
        let _busy = TcpStream::connect(addr).unwrap();
        let _queued = TcpStream::connect(addr).unwrap();
        // Give the accept thread time to hand the first to the worker and
        // park the second in the channel.
        std::thread::sleep(Duration::from_millis(100));

        // A 503 may take a couple of tries: the accept thread races with
        // worker pickup, so the first extra connection can still slip
        // into the freed queue slot.
        let mut shed = None;
        for _ in 0..5 {
            let mut sock = TcpStream::connect(addr).unwrap();
            sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let mut text = String::new();
            if sock.read_to_string(&mut text).is_ok() && text.starts_with("HTTP/1.1 503") {
                shed = Some(text);
                break;
            }
        }
        let text = shed.expect("an over-capacity connection must get a 503");
        assert!(text.contains("Retry-After: 2"), "{text}");
        assert!(text.contains("\"endpoint\":\"ep-under-test\""), "{text}");
        assert!(text.contains("\"error\":"), "{text}");

        drop(_busy);
        drop(_queued);
        handle.shutdown();
    }

    #[test]
    fn error_bodies_are_json_naming_the_endpoint() {
        let handle = start(ServerConfig {
            name: "srv1".to_string(),
            ..Default::default()
        });
        let (status, text) = raw_roundtrip(
            handle.local_addr(),
            "GET /sparql HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
        );
        assert!(status.contains("400"), "{text}");
        assert!(text.contains("Content-Type: application/json"), "{text}");
        assert!(text.contains("\"endpoint\":\"srv1\""), "{text}");
        assert!(text.contains("missing query= parameter"), "{text}");
        handle.shutdown();
    }

    #[test]
    fn read_deadline_times_out_slow_clients() {
        let handle = start(ServerConfig {
            read_deadline: Duration::from_millis(100),
            ..Default::default()
        });
        let mut sock = TcpStream::connect(handle.local_addr()).unwrap();
        // Send half a request line, then stall.
        sock.write_all(b"GET /spar").unwrap();
        let mut text = String::new();
        sock.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 408"), "{text}");
        handle.shutdown();
    }

    #[test]
    fn slow_loris_mid_body_times_out_with_408_json_error() {
        let handle = start(ServerConfig {
            read_deadline: Duration::from_millis(100),
            name: "srv-guarded".to_string(),
            ..Default::default()
        });
        let mut sock = TcpStream::connect(handle.local_addr()).unwrap();
        // Complete headers promising a body, then a trickle that stalls:
        // the classic slow-loris shape. The read deadline must cut the
        // connection loose with a 408 instead of pinning a worker.
        sock.write_all(
            b"POST /sparql HTTP/1.1\r\nHost: h\r\n\
              Content-Type: application/sparql-query\r\nContent-Length: 64\r\n\r\nASK {",
        )
        .unwrap();
        let mut text = String::new();
        sock.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 408"), "{text}");
        assert!(text.contains("Content-Type: application/json"), "{text}");
        assert!(text.contains("\"endpoint\":\"srv-guarded\""), "{text}");
        handle.shutdown();
    }

    #[test]
    fn oversized_body_gets_413_with_json_error_body() {
        let handle = start(ServerConfig {
            max_query_bytes: 128,
            name: "srv-capped".to_string(),
            ..Default::default()
        });
        let request = format!(
            "POST /sparql HTTP/1.1\r\nHost: h\r\nContent-Type: application/sparql-query\r\n\
             Content-Length: 4096\r\nConnection: close\r\n\r\n{}",
            "x".repeat(4096)
        );
        let (status, text) = raw_roundtrip(handle.local_addr(), &request);
        assert!(status.contains("413"), "{text}");
        assert!(text.contains("Content-Type: application/json"), "{text}");
        assert!(text.contains("\"endpoint\":\"srv-capped\""), "{text}");
        assert!(text.contains("exceeds the 128-byte limit"), "{text}");
        handle.shutdown();
    }

    #[test]
    fn server_row_cap_truncates_with_a_head_warning() {
        let handle = start(ServerConfig {
            max_result_rows: Some(1),
            name: "srv-rowcap".to_string(),
            ..Default::default()
        });
        // The test store has two ?s <http://x/p> ?o rows; the cap keeps one.
        let ep = HttpEndpoint::new("srv", &handle.url()).unwrap();
        let q = lusail_sparql::parse_query("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }").unwrap();
        let rel = ep.select(&q).unwrap();
        assert_eq!(rel.len(), 1, "cap must hold");
        // The truncation is advertised in the response head, and the
        // client transport surfaces it as ground-truth metadata.
        let meta = ep
            .select_with_meta(&q, lusail_federation::Deadline::none())
            .unwrap();
        assert!(meta.truncated, "X-Lusail-Truncated must reach the client");
        assert_eq!(meta.rows.len(), 1);
        // An uncapped query advertises nothing.
        let small =
            lusail_sparql::parse_query("SELECT ?s WHERE { ?s <http://x/label> ?o }").unwrap();
        let meta = ep
            .select_with_meta(&small, lusail_federation::Deadline::none())
            .unwrap();
        assert!(!meta.truncated);
        assert_eq!(meta.rows.len(), 1, "under-cap results pass untouched");
        // The raw body carries the warning in the head, before any row,
        // and the raw header is on the wire.
        let request = format!(
            "GET /sparql?query={} HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
            percent_encode("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }")
        );
        let (status, text) = raw_roundtrip(handle.local_addr(), &request);
        assert!(status.contains("200"), "{text}");
        assert!(text.contains("X-Lusail-Truncated: true"), "{text}");
        assert!(
            text.contains("srv-rowcap: result truncated to 1 of 2 rows"),
            "{text}"
        );
        handle.shutdown();
    }

    #[test]
    fn streams_chunked_solutions_clients_can_parse() {
        let handle = start(ServerConfig::default());
        let request = format!(
            "GET /sparql?query={} HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
            percent_encode("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }")
        );
        let (status, text) = raw_roundtrip(handle.local_addr(), &request);
        assert!(status.contains("200"), "{text}");
        assert!(text.contains("Transfer-Encoding: chunked"), "{text}");
        handle.shutdown();
    }

    #[test]
    fn stats_route_reports_split_counters() {
        let handle = start(ServerConfig {
            name: "srv-stats".to_string(),
            ..Default::default()
        });
        let addr = handle.local_addr();
        // One success…
        let ep = HttpEndpoint::new("srv", &handle.url()).unwrap();
        let ask = lusail_sparql::parse_query("ASK { ?s ?p ?o }").unwrap();
        assert!(ep.ask(&ask).unwrap());
        // …and one client error (missing query=).
        let (status, _) = raw_roundtrip(
            addr,
            "GET /sparql HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
        );
        assert!(status.contains("400"), "{status}");

        let (status, text) = raw_roundtrip(
            addr,
            "GET /stats HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
        );
        assert!(status.contains("200"), "{text}");
        assert!(text.contains("\"endpoint\":\"srv-stats\""), "{text}");
        assert!(text.contains("\"served\":1"), "{text}");
        assert!(text.contains("\"errors\":1"), "{text}");
        assert!(text.contains("\"shed\":0"), "{text}");
        // A plain store backend reports no service-level stats.
        assert!(text.contains("\"service\":null"), "{text}");

        let counts = handle.stats();
        assert_eq!(counts.served, 2, "ASK + /stats");
        assert_eq!(counts.errors, 1);
        assert_eq!(counts.shed, 0);
        assert_eq!(handle.requests_served(), counts.total());
        handle.shutdown();
    }

    #[test]
    fn cache_invalidate_route_is_404_without_shared_caches() {
        let handle = start(ServerConfig::default());
        let (status, text) = raw_roundtrip(
            handle.local_addr(),
            "POST /cache/invalidate HTTP/1.1\r\nHost: h\r\nContent-Length: 0\r\n\
             Connection: close\r\n\r\n",
        );
        assert!(status.contains("404"), "{text}");
        assert!(text.contains("no shared caches"), "{text}");
        // Wrong method gets a 405, not a silent query parse attempt.
        let (status, text) = raw_roundtrip(
            handle.local_addr(),
            "GET /stats HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
        );
        assert!(status.contains("200"), "{text}");
        let (status, _) = raw_roundtrip(
            handle.local_addr(),
            "GET /cache/invalidate HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
        );
        assert!(status.contains("405"), "{status}");
        handle.shutdown();
    }

    #[test]
    fn backend_sees_client_id_header_or_peer_ip() {
        struct Capture(Mutex<Vec<String>>);
        impl QueryBackend for Capture {
            fn answer(&self, _query: &str, client: &ClientInfo) -> Answer {
                self.0
                    .lock()
                    .expect("capture lock poisoned")
                    .push(client.id.clone());
                Answer::Boolean(true)
            }
        }
        let capture = Arc::new(Capture(Mutex::new(Vec::new())));
        let handle = SparqlServer::with_backend(
            "127.0.0.1:0",
            Arc::clone(&capture) as Arc<dyn QueryBackend>,
            ServerConfig::default(),
        )
        .unwrap()
        .spawn();
        let body = "ASK { ?s ?p ?o }";
        let with_header = format!(
            "POST /sparql HTTP/1.1\r\nHost: h\r\nX-Client-Id: tenant-7\r\n\
             Content-Type: application/sparql-query\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let (status, _) = raw_roundtrip(handle.local_addr(), &with_header);
        assert!(status.contains("200"), "{status}");
        let without_header = format!(
            "POST /sparql HTTP/1.1\r\nHost: h\r\n\
             Content-Type: application/sparql-query\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let (status, _) = raw_roundtrip(handle.local_addr(), &without_header);
        assert!(status.contains("200"), "{status}");
        let seen = capture.0.lock().expect("capture lock poisoned").clone();
        assert_eq!(seen[0], "tenant-7");
        assert_eq!(seen[1], "127.0.0.1", "fallback identity is the peer IP");
        handle.shutdown();
    }

    #[test]
    fn backend_retry_after_reaches_the_wire() {
        struct AlwaysBusy;
        impl QueryBackend for AlwaysBusy {
            fn answer(&self, _query: &str, _client: &ClientInfo) -> Answer {
                Answer::Error {
                    status: 429,
                    message: "client quota exhausted".to_string(),
                    retry_after: Some(Duration::from_secs(3)),
                }
            }
        }
        let handle = SparqlServer::with_backend(
            "127.0.0.1:0",
            Arc::new(AlwaysBusy),
            ServerConfig {
                name: "srv-quota".to_string(),
                ..Default::default()
            },
        )
        .unwrap()
        .spawn();
        let (status, text) = raw_roundtrip(
            handle.local_addr(),
            &format!(
                "GET /sparql?query={} HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
                percent_encode("ASK { ?s ?p ?o }")
            ),
        );
        assert!(status.contains("429"), "{text}");
        assert!(text.contains("Retry-After: 3"), "{text}");
        assert!(text.contains("client quota exhausted"), "{text}");
        assert_eq!(handle.stats().shed, 1, "quota refusals count as sheds");
        handle.shutdown();
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let handle = start(ServerConfig {
            workers: 2,
            ..Default::default()
        });
        let url = handle.url();
        let ep = HttpEndpoint::new("srv", &url).unwrap();
        let q = lusail_sparql::parse_query("ASK { ?s ?p ?o }").unwrap();
        assert!(ep.ask(&q).unwrap());
        handle.shutdown();
        // After shutdown nothing serves the port: the client must fail.
        let ep = HttpEndpoint::new("srv", &url)
            .unwrap()
            .with_config(HttpConfig {
                retries: 0,
                ..Default::default()
            });
        assert!(ep.execute(&q).is_err());
    }
}
