//! Timing for Figure 14: FedX vs LADE-only vs LADE+SAPE on the
//! LUBM Q2 triangle (the decomposition's best case) and LargeRDFBench C9.

use lusail_baselines::{FedX, FedXConfig, FederatedEngine};
use lusail_bench::timing::Harness;
use lusail_core::{LusailConfig, LusailEngine, SapeMode};
use lusail_federation::NetworkProfile;
use lusail_workloads::{federation_from_graphs, largerdf, lubm};
use std::hint::black_box;

fn fig14(c: &mut Harness) {
    let lubm_graphs = lubm::generate_all(&lubm::LubmConfig::with_universities(4));
    let lrb_graphs = largerdf::generate_all(&largerdf::LargeRdfConfig::default());
    let cases = [
        ("lubm_q2", lubm_graphs.clone(), lubm::queries()[1].parse()),
        (
            "lrb_c9",
            lrb_graphs,
            largerdf::all_queries()
                .into_iter()
                .find(|q| q.name == "C9")
                .unwrap()
                .parse(),
        ),
    ];
    for (tag, graphs, query) in cases {
        let mut group = c.benchmark_group(format!("fig14_{tag}"));
        let fedx = FedX::new(
            federation_from_graphs(graphs.clone(), NetworkProfile::local_cluster()),
            FedXConfig::default(),
        );
        group.bench_function("FedX", |b| {
            b.iter(|| black_box(fedx.execute(&query).map(|r| r.len()).unwrap_or(0)))
        });
        for (label, mode) in [("LADE", SapeMode::LadeOnly), ("LADE+SAPE", SapeMode::Full)] {
            let engine = LusailEngine::new(
                federation_from_graphs(graphs.clone(), NetworkProfile::local_cluster()),
                LusailConfig {
                    sape_mode: mode,
                    ..Default::default()
                },
            );
            group.bench_function(label, |b| {
                b.iter(|| black_box(engine.execute(&query).unwrap().len()))
            });
        }
        group.finish();
    }
}

fn main() {
    let mut harness = Harness::from_env();
    fig14(&mut harness);
}
