//! Timing for Figure 10: one representative LargeRDFBench query
//! per category (S13 simple-but-large, C9 complex chain, B3 large) per
//! system.

use lusail_bench::timing::Harness;
use lusail_bench::{build_with_federation, System};
use lusail_federation::NetworkProfile;
use lusail_workloads::largerdf;
use std::hint::black_box;
use std::time::Duration;

fn fig10(c: &mut Harness) {
    let cfg = largerdf::LargeRdfConfig::default();
    let graphs = largerdf::generate_all(&cfg);
    for name in ["S13", "C9", "B3"] {
        let query = largerdf::all_queries()
            .into_iter()
            .find(|q| q.name == name)
            .unwrap()
            .parse();
        let mut group = c.benchmark_group(format!("fig10_{name}"));
        for system in System::ALL {
            let under_test = build_with_federation(
                system,
                &graphs,
                NetworkProfile::local_cluster(),
                Duration::from_secs(60),
            );
            group.bench_function(system.label(), |b| {
                b.iter(|| {
                    black_box(
                        under_test
                            .engine
                            .execute(&query)
                            .map(|r| r.len())
                            .unwrap_or(0),
                    )
                })
            });
        }
        group.finish();
    }
}

fn main() {
    let mut harness = Harness::from_env();
    fig10(&mut harness);
}
