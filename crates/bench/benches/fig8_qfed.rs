//! Timing for Figure 8: each system's end-to-end time over the
//! QFed query suite (4 endpoints, local-cluster network).

use lusail_bench::timing::Harness;
use lusail_bench::{build_with_federation, System};
use lusail_federation::NetworkProfile;
use lusail_workloads::qfed;
use std::hint::black_box;
use std::time::Duration;

fn fig8(c: &mut Harness) {
    let cfg = qfed::QfedConfig::default();
    let graphs = qfed::generate_all(&cfg);
    let queries: Vec<_> = qfed::queries().iter().map(|q| q.parse()).collect();

    let mut group = c.benchmark_group("fig8_qfed_suite");
    for system in System::ALL {
        let under_test = build_with_federation(
            system,
            &graphs,
            NetworkProfile::local_cluster(),
            Duration::from_secs(60),
        );
        group.bench_function(system.label(), |b| {
            b.iter(|| {
                let mut rows = 0;
                for q in &queries {
                    rows += under_test.engine.execute(q).map(|r| r.len()).unwrap_or(0);
                }
                black_box(rows)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut harness = Harness::from_env();
    fig8(&mut harness);
}
