//! Timing for Figure 12(b,c): Lusail's end-to-end time on LUBM
//! Q3/Q4 as the endpoint count grows, with and without the analysis cache.

use lusail_bench::timing::Harness;
use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::NetworkProfile;
use lusail_workloads::{federation_from_graphs, lubm};
use std::hint::black_box;

fn fig12(c: &mut Harness) {
    for endpoints in [4usize, 16] {
        let cfg = lubm::LubmConfig::with_universities(endpoints);
        let graphs = lubm::generate_all(&cfg);
        let q4 = lubm::queries()[3].parse();
        let mut group = c.benchmark_group(format!("fig12_lubm_q4_{endpoints}ep"));
        for (tag, config) in [
            ("cached", LusailConfig::default()),
            ("uncached", LusailConfig::without_cache()),
        ] {
            let engine = LusailEngine::new(
                federation_from_graphs(graphs.clone(), NetworkProfile::local_cluster()),
                config,
            );
            // Warm the cache for the cached variant.
            engine.execute(&q4).unwrap();
            group.bench_function(tag, |b| {
                b.iter(|| black_box(engine.execute(&q4).unwrap().len()))
            });
        }
        group.finish();
    }
}

fn main() {
    let mut harness = Harness::from_env();
    fig12(&mut harness);
}
