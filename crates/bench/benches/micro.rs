//! Micro-benchmarks for the substrates: store access paths, local BGP
//! evaluation, relation joins, and the SPARQL parser.

use lusail_bench::timing::{BatchSize, Harness};
use lusail_rdf::Term;
use lusail_sparql::ast::Variable;
use lusail_sparql::solution::Relation;
use lusail_store::{Evaluator, Store};
use lusail_workloads::lubm;
use std::hint::black_box;

fn store_benches(c: &mut Harness) {
    let cfg = lubm::LubmConfig::with_universities(1);
    let graph = lubm::generate_university(&cfg, 0);
    let store = Store::from_graph(&graph);
    let advisor = store
        .resolve(&Term::iri(format!("{}advisor", lusail_rdf::vocab::ub::NS)))
        .expect("advisor predicate present");

    c.bench_function("store/match_by_predicate", |b| {
        b.iter(|| black_box(store.match_ids(None, Some(advisor), None).len()))
    });
    c.bench_function("store/count_by_predicate", |b| {
        b.iter(|| black_box(store.count_ids(None, Some(advisor), None)))
    });

    let q2 = lubm::queries()[1].parse();
    c.bench_function("store/eval_lubm_q2_triangle", |b| {
        b.iter(|| {
            let rel = Evaluator::new(&store).query(&q2).into_solutions();
            black_box(rel.len())
        })
    });

    let qa_text = lubm::query_qa().text;
    c.bench_function("sparql/parse_qa", |b| {
        b.iter(|| black_box(lusail_sparql::parse_query(&qa_text).unwrap()))
    });
}

fn join_benches(c: &mut Harness) {
    let v = |n: &str| Variable::new(n);
    let mk = |vars: [&str; 2], n: usize, offset: usize| {
        let mut r = Relation::new(vars.iter().map(|x| v(x)).collect());
        for i in 0..n {
            r.push(vec![
                Some(Term::iri(format!("http://x/{}", i + offset))),
                Some(Term::integer(i as i64)),
            ]);
        }
        r
    };
    let a = mk(["x", "y"], 4000, 0);
    let b = mk(["x", "z"], 4000, 2000);
    c.bench_function("relation/hash_join_4k_x_4k", |bench| {
        bench.iter(|| black_box(a.join(&b).len()))
    });
    let handler = lusail_federation::RequestHandler::new(4);
    c.bench_function("relation/parallel_join_4k_x_4k", |bench| {
        bench.iter(|| black_box(lusail_core::sape::parallel_join(&a, &b, &handler).len()))
    });
    c.bench_function("relation/left_join_4k_x_4k", |bench| {
        bench.iter_batched(
            || (a.clone(), b.clone()),
            |(a, b)| black_box(a.left_join(&b).len()),
            BatchSize::LargeInput,
        )
    });
}

fn main() {
    let mut harness = Harness::from_env();
    store_benches(&mut harness);
    join_benches(&mut harness);
}
