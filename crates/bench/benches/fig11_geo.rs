//! Timing for Figure 11: the geo-distributed profile. The shape
//! to look for: Lusail degrades mildly vs the local cluster while
//! FedX/HiBISCuS degrade by an order of magnitude (their serial bound-join
//! blocks each pay the WAN round trip).

use lusail_bench::timing::Harness;
use lusail_bench::{build_with_federation, System};
use lusail_federation::NetworkProfile;
use lusail_workloads::lubm;
use std::hint::black_box;
use std::time::Duration;

fn fig11(c: &mut Harness) {
    let cfg = lubm::LubmConfig::with_universities(2);
    let graphs = lubm::generate_all(&cfg);
    let q2 = lubm::queries()[1].parse();
    for (tag, profile) in [
        ("local", NetworkProfile::local_cluster()),
        ("geo", NetworkProfile::geo_distributed()),
    ] {
        let mut group = c.benchmark_group(format!("fig11_lubm_q2_{tag}"));
        for system in [System::Lusail, System::FedX] {
            let under_test =
                build_with_federation(system, &graphs, profile, Duration::from_secs(60));
            group.bench_function(system.label(), |b| {
                b.iter(|| black_box(under_test.engine.execute(&q2).map(|r| r.len()).unwrap_or(0)))
            });
        }
        group.finish();
    }
}

fn main() {
    let mut harness = Harness::from_env();
    fig11(&mut harness);
}
