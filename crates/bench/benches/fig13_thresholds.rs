//! Timing for Figure 13: the delay-threshold ablation — total
//! time over a representative mixed query set per threshold.

use lusail_bench::timing::Harness;
use lusail_core::{DelayThreshold, LusailConfig, LusailEngine};
use lusail_federation::NetworkProfile;
use lusail_workloads::{federation_from_graphs, largerdf};
use std::hint::black_box;

fn fig13(c: &mut Harness) {
    let cfg = largerdf::LargeRdfConfig::default();
    let graphs = largerdf::generate_all(&cfg);
    let names = ["S13", "C1", "C9", "B3", "B8"];
    let queries: Vec<_> = largerdf::all_queries()
        .into_iter()
        .filter(|q| names.contains(&q.name))
        .map(|q| q.parse())
        .collect();
    let mut group = c.benchmark_group("fig13_thresholds");
    for threshold in [
        DelayThreshold::Mu,
        DelayThreshold::MuSigma,
        DelayThreshold::Mu2Sigma,
        DelayThreshold::OutliersOnly,
    ] {
        let engine = LusailEngine::new(
            federation_from_graphs(graphs.clone(), NetworkProfile::geo_distributed()),
            LusailConfig {
                delay_threshold: threshold,
                ..Default::default()
            },
        );
        group.bench_function(threshold.label(), |b| {
            b.iter(|| {
                let mut rows = 0;
                for q in &queries {
                    rows += engine.execute(q).map(|r| r.len()).unwrap_or(0);
                }
                black_box(rows)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut harness = Harness::from_env();
    fig13(&mut harness);
}
