//! Timing for Figure 9: LUBM Q1–Q4 per system at 2 and 4
//! endpoints. The paper's headline: Lusail is up to three orders of
//! magnitude faster on Q1/Q2/Q4 because the shared schema defeats
//! schema-only decomposition.

use lusail_bench::timing::Harness;
use lusail_bench::{build_with_federation, System};
use lusail_federation::NetworkProfile;
use lusail_workloads::lubm;
use std::hint::black_box;
use std::time::Duration;

fn fig9(c: &mut Harness) {
    for endpoints in [2usize, 4] {
        let cfg = lubm::LubmConfig::with_universities(endpoints);
        let graphs = lubm::generate_all(&cfg);
        let queries: Vec<_> = lubm::queries().iter().map(|q| q.parse()).collect();
        let mut group = c.benchmark_group(format!("fig9_lubm_{endpoints}ep"));
        for system in System::ALL {
            let under_test = build_with_federation(
                system,
                &graphs,
                NetworkProfile::local_cluster(),
                Duration::from_secs(60),
            );
            group.bench_function(system.label(), |b| {
                b.iter(|| {
                    let mut rows = 0;
                    for q in &queries {
                        rows += under_test.engine.execute(q).map(|r| r.len()).unwrap_or(0);
                    }
                    black_box(rows)
                })
            });
        }
        group.finish();
    }
}

fn main() {
    let mut harness = Harness::from_env();
    fig9(&mut harness);
}
