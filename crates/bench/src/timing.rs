//! A plain-`Instant` timing harness for the `benches/` targets.
//!
//! Criterion is unavailable offline, so this module provides the small
//! slice of its API the figure benches need: named groups, `bench_function`
//! with a [`Bencher`], auto-calibrated inner iteration counts, and a
//! min/mean/max report per benchmark. Every bench target is a plain
//! `harness = false` binary whose `main` drives a [`Harness`].
//!
//! Knobs (environment):
//! * `LUSAIL_BENCH_SAMPLES` — measured samples per benchmark (default 10).
//! * `LUSAIL_BENCH_SAMPLE_MS` — target wall time per sample; the harness
//!   packs enough iterations into one sample to reach it (default 100 ms).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level driver: create one per bench binary, call
/// [`Harness::benchmark_group`] / [`Harness::bench_function`], results are
/// printed as they complete.
pub struct Harness {
    samples: usize,
    sample_target: Duration,
}

impl Harness {
    /// A harness configured from the environment (see module docs).
    pub fn from_env() -> Self {
        let samples = std::env::var("LUSAIL_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10)
            .max(2);
        let sample_ms = std::env::var("LUSAIL_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100u64);
        Harness {
            samples,
            sample_target: Duration::from_millis(sample_ms),
        }
    }

    /// A named group; benchmark labels are reported as `group/label`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            harness: self,
            name: name.into(),
        }
    }

    /// Run one benchmark and print its report line.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run(name, f);
        self
    }

    fn run(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.samples,
            sample_target: self.sample_target,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(r) => println!("{name:<44} {r}"),
            None => println!("{name:<44} (no measurement — Bencher::iter never called)"),
        }
    }
}

/// A named benchmark group (mirrors criterion's `BenchmarkGroup`).
pub struct Group<'h> {
    harness: &'h mut Harness,
    name: String,
}

impl Group<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function(&mut self, label: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let name = format!("{}/{}", self.name, label);
        self.harness.run(&name, f);
        self
    }

    /// End the group. (Nothing to flush — reports print eagerly.)
    pub fn finish(self) {}
}

/// Batch-size hint, accepted for API compatibility; the harness always
/// times per-invocation with the setup excluded.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
}

/// Passed to each benchmark closure; call [`Bencher::iter`] (or
/// [`Bencher::iter_batched`]) exactly once with the code under test.
pub struct Bencher {
    samples: usize,
    sample_target: Duration,
    result: Option<Report>,
}

impl Bencher {
    /// Measure `f`: one calibration call sizes the per-sample iteration
    /// count so each sample takes roughly the target wall time, then
    /// `samples` samples are measured.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed();
        let iters = self.iters_for(once);
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            times.push(start.elapsed() / iters as u32);
        }
        self.result = Some(Report::from_times(&times, iters));
    }

    /// Like [`Bencher::iter`], but with per-invocation setup excluded from
    /// the measurement.
    pub fn iter_batched<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut f: impl FnMut(I) -> T,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(f(input));
        let once = start.elapsed();
        let iters = self.iters_for(once);
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut in_sample = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(f(input));
                in_sample += start.elapsed();
            }
            times.push(in_sample / iters as u32);
        }
        self.result = Some(Report::from_times(&times, iters));
    }

    fn iters_for(&self, once: Duration) -> usize {
        if once >= self.sample_target {
            return 1;
        }
        (self.sample_target.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as usize
    }
}

/// Aggregated timing for one benchmark.
struct Report {
    mean: Duration,
    min: Duration,
    max: Duration,
    samples: usize,
    iters: usize,
}

impl Report {
    fn from_times(times: &[Duration], iters: usize) -> Self {
        let total: Duration = times.iter().sum();
        Report {
            mean: total / times.len() as u32,
            min: *times.iter().min().expect("at least one sample"),
            max: *times.iter().max().expect("at least one sample"),
            samples: times.len(),
            iters,
        }
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "time: [{} {} {}]  ({} samples × {} iters)",
            fmt_duration(self.min),
            fmt_duration(self.mean),
            fmt_duration(self.max),
            self.samples,
            self.iters
        )
    }
}

/// Human scale: ns under 1 µs, µs under 1 ms, ms under 1 s, else seconds.
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_cover_samples() {
        let mut h = Harness {
            samples: 3,
            sample_target: Duration::from_micros(200),
        };
        // Runs without panicking and prints a line; the closure must be
        // called at least samples + 1 (calibration) times.
        let mut calls = 0;
        h.bench_function("timing/self_test", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        assert!(
            calls >= 4,
            "expected calibration + 3 samples, got {calls} calls"
        );
    }

    #[test]
    fn batched_excludes_setup() {
        let mut h = Harness {
            samples: 2,
            sample_target: Duration::from_micros(50),
        };
        h.bench_function("timing/batched_self_test", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(999)), "999 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
