//! # lusail-bench
//!
//! The benchmark harness: everything needed to regenerate each table and
//! figure of the paper's evaluation (Section 5). One binary per artifact —
//! see DESIGN.md's per-experiment index — plus plain-`Instant` timing
//! benches under `benches/` driven by the [`timing`] harness.
//!
//! The harness follows the paper's protocol: every query runs three times
//! and the average of the last two runs is reported; a per-query time
//! limit marks slow queries as timed out (the paper's limit is one hour;
//! ours defaults to 20 s on the compressed network timescale and can be
//! overridden with `LUSAIL_BENCH_TIMEOUT_SECS`). Workload scale can be
//! adjusted with `LUSAIL_BENCH_SCALE`.

pub mod timing;

use lusail_baselines::{FedX, FedXConfig, FederatedEngine, HiBiscus, Splendid};
use lusail_core::{EngineError, LusailConfig, LusailEngine};
use lusail_federation::{Federation, NetworkProfile};
use lusail_rdf::Graph;
use lusail_workloads::federation_from_graphs;
use lusail_workloads::BenchQuery;
use std::time::{Duration, Instant};

/// How a measured query run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// Completed with this many result rows.
    Ok(usize),
    /// Hit the time limit (the paper's ✗ / "TO" entries).
    Timeout,
    /// The engine cannot evaluate the query (C5/B5/B6 on the baselines).
    Unsupported,
    /// An endpoint rejected a request mid-query (the paper's "RE" rows).
    RuntimeError,
}

/// One measured cell of a results table.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub system: String,
    pub query: String,
    pub status: Status,
    /// Average of the last two of three runs (the paper's protocol), or
    /// the single failing run's duration.
    pub elapsed: Duration,
    /// Endpoint requests issued during the measured runs (per run).
    pub requests: u64,
    /// Bytes shipped from endpoints to the federator (per run).
    pub bytes_received: u64,
}

impl Measurement {
    /// The table cell text: seconds with three decimals, `TO`, or `NS`.
    pub fn cell(&self) -> String {
        match self.status {
            Status::Ok(_) => format!("{:.3}", self.elapsed.as_secs_f64()),
            Status::Timeout => "TO".to_string(),
            Status::Unsupported => "NS".to_string(),
            Status::RuntimeError => "RE".to_string(),
        }
    }
}

/// Benchmark-wide settings.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    pub timeout: Duration,
    /// Runs per query; the first is a warm-up, the rest are averaged.
    pub runs: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        let timeout = std::env::var("LUSAIL_BENCH_TIMEOUT_SECS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Duration::from_secs)
            .unwrap_or(Duration::from_secs(20));
        HarnessConfig { timeout, runs: 3 }
    }
}

/// The benchmark-wide scale factor (`LUSAIL_BENCH_SCALE`, default 1.0).
pub fn bench_scale() -> f64 {
    std::env::var("LUSAIL_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// The systems compared in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    Lusail,
    FedX,
    HiBiscus,
    Splendid,
}

impl System {
    pub const ALL: [System; 4] = [
        System::Lusail,
        System::FedX,
        System::HiBiscus,
        System::Splendid,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            System::Lusail => "Lusail",
            System::FedX => "FedX",
            System::HiBiscus => "HiBISCuS",
            System::Splendid => "SPLENDID",
        }
    }

    /// Build this system over a fresh federation of `graphs`. Each engine
    /// gets its own endpoints so traffic counters don't interfere.
    pub fn build(
        &self,
        graphs: &[(String, Graph)],
        profile: NetworkProfile,
        timeout: Duration,
    ) -> Box<dyn FederatedEngine> {
        let fed = federation_from_graphs(graphs.to_vec(), profile);
        match self {
            System::Lusail => Box::new(LusailEngine::new(
                fed,
                LusailConfig {
                    timeout: Some(timeout),
                    ..Default::default()
                },
            )),
            System::FedX => Box::new(FedX::new(
                fed,
                FedXConfig {
                    timeout: Some(timeout),
                    ..Default::default()
                },
            )),
            System::HiBiscus => Box::new(HiBiscus::new(
                fed,
                FedXConfig {
                    timeout: Some(timeout),
                    ..Default::default()
                },
            )),
            System::Splendid => {
                let mut s = Splendid::new(fed);
                s.timeout = Some(timeout);
                Box::new(s)
            }
        }
    }
}

/// Engines must expose their federation for traffic accounting; this
/// helper rebuilds one per run so request counts are per-engine.
pub struct EngineUnderTest {
    pub engine: Box<dyn FederatedEngine>,
    pub federation: Federation,
}

/// Build an engine over an existing federation (endpoints may carry
/// custom limits).
pub fn build_on_federation(system: System, fed: Federation, timeout: Duration) -> EngineUnderTest {
    let engine: Box<dyn FederatedEngine> = match system {
        System::Lusail => Box::new(LusailEngine::new(
            fed.clone(),
            LusailConfig {
                timeout: Some(timeout),
                ..Default::default()
            },
        )),
        System::FedX => Box::new(FedX::new(
            fed.clone(),
            FedXConfig {
                timeout: Some(timeout),
                ..Default::default()
            },
        )),
        System::HiBiscus => Box::new(HiBiscus::new(
            fed.clone(),
            FedXConfig {
                timeout: Some(timeout),
                ..Default::default()
            },
        )),
        System::Splendid => {
            let mut s = Splendid::new(fed.clone());
            s.timeout = Some(timeout);
            Box::new(s)
        }
    };
    EngineUnderTest {
        engine,
        federation: fed,
    }
}

/// Build an engine together with a handle on its federation.
pub fn build_with_federation(
    system: System,
    graphs: &[(String, Graph)],
    profile: NetworkProfile,
    timeout: Duration,
) -> EngineUnderTest {
    build_on_federation(
        system,
        federation_from_graphs(graphs.to_vec(), profile),
        timeout,
    )
}

/// Run one query under the paper's protocol (3 runs, average of last two).
pub fn measure(
    under_test: &EngineUnderTest,
    query: &BenchQuery,
    config: &HarnessConfig,
) -> Measurement {
    let parsed = query.parse();
    let mut timings = Vec::new();
    let mut status = Status::Ok(0);
    let mut requests = 0;
    let mut bytes = 0;
    for run in 0..config.runs.max(2) {
        under_test.federation.reset_traffic();
        let start = Instant::now();
        let outcome = under_test.engine.execute(&parsed);
        let elapsed = start.elapsed();
        let traffic = under_test.federation.total_traffic();
        match outcome {
            Ok(rel) => {
                status = Status::Ok(rel.len());
                if run > 0 {
                    timings.push(elapsed);
                    requests = traffic.requests;
                    bytes = traffic.bytes_received;
                }
            }
            Err(EngineError::Timeout(_)) => {
                return Measurement {
                    system: under_test.engine.name().to_string(),
                    query: query.name.to_string(),
                    status: Status::Timeout,
                    elapsed,
                    requests: traffic.requests,
                    bytes_received: traffic.bytes_received,
                };
            }
            Err(EngineError::Unsupported(_)) => {
                return Measurement {
                    system: under_test.engine.name().to_string(),
                    query: query.name.to_string(),
                    status: Status::Unsupported,
                    elapsed,
                    requests: traffic.requests,
                    bytes_received: traffic.bytes_received,
                };
            }
            Err(EngineError::Endpoint(_))
            | Err(EngineError::BudgetExceeded { .. })
            | Err(EngineError::Cancelled(_)) => {
                return Measurement {
                    system: under_test.engine.name().to_string(),
                    query: query.name.to_string(),
                    status: Status::RuntimeError,
                    elapsed,
                    requests: traffic.requests,
                    bytes_received: traffic.bytes_received,
                };
            }
        }
    }
    let avg = timings.iter().sum::<Duration>() / timings.len().max(1) as u32;
    Measurement {
        system: under_test.engine.name().to_string(),
        query: query.name.to_string(),
        status,
        elapsed: avg,
        requests,
        bytes_received: bytes,
    }
}

/// One machine-readable benchmark data point, written to a
/// `BENCH_<name>.json` file alongside the human-readable tables so the
/// perf trajectory is trackable across revisions.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    pub query: String,
    /// Result bytes that crossed the wire (or the in-memory relation's
    /// wire size for microbenches with no socket).
    pub wire_bytes: u64,
    pub rows: u64,
    pub elapsed_ms: f64,
    /// Which result codec carried the bytes: "binary", "json", or for
    /// join microbenches the solution representation ("id", "string").
    pub codec: String,
}

/// Write records as a JSON array to `BENCH_<name>.json` in the current
/// directory, overwriting any previous run's file.
pub fn write_bench_json(name: &str, records: &[BenchRecord]) -> std::io::Result<String> {
    let body = records
        .iter()
        .map(|r| {
            format!(
                "{{\"query\":\"{}\",\"wire_bytes\":{},\"rows\":{},\"elapsed_ms\":{:.3},\"codec\":\"{}\"}}",
                r.query.replace('"', "\\\""),
                r.wire_bytes,
                r.rows,
                r.elapsed_ms,
                r.codec.replace('"', "\\\"")
            )
        })
        .collect::<Vec<_>>()
        .join(",\n  ");
    let path = format!("BENCH_{name}.json");
    std::fs::write(&path, format!("[\n  {body}\n]\n"))?;
    Ok(path)
}

/// Render a figure/table as fixed-width text: one row per query, one
/// column per system.
pub fn print_table(title: &str, queries: &[&str], systems: &[&str], cells: &[Vec<String>]) {
    println!("\n=== {title} ===");
    print!("{:<10}", "query");
    for s in systems {
        print!("{s:>18}");
    }
    println!();
    for (qi, qname) in queries.iter().enumerate() {
        print!("{qname:<10}");
        for cell in &cells[qi] {
            print!("{cell:>18}");
        }
        println!();
    }
}

/// Run a full system × query grid and print it paper-style. Returns the
/// measurements for further reporting.
pub fn run_grid(
    title: &str,
    graphs: &[(String, Graph)],
    profile: NetworkProfile,
    systems: &[System],
    queries: &[BenchQuery],
    config: &HarnessConfig,
) -> Vec<Measurement> {
    let mut all = Vec::new();
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); queries.len()];
    for system in systems {
        let under_test = build_with_federation(*system, graphs, profile, config.timeout);
        for (qi, query) in queries.iter().enumerate() {
            let m = measure(&under_test, query, config);
            cells[qi].push(format!("{} ({} rq)", m.cell(), m.requests));
            all.push(m);
        }
    }
    let query_names: Vec<&str> = queries.iter().map(|q| q.name).collect();
    let system_names: Vec<&str> = systems.iter().map(|s| s.label()).collect();
    print_table(title, &query_names, &system_names, &cells);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_workloads::lubm;

    #[test]
    fn measure_runs_protocol() {
        let cfg = lubm::LubmConfig::with_universities(2);
        let graphs = lubm::generate_all(&cfg);
        let under_test = build_with_federation(
            System::Lusail,
            &graphs,
            NetworkProfile::instant(),
            Duration::from_secs(30),
        );
        let q = &lubm::queries()[2]; // Q3, small
        let m = measure(&under_test, q, &HarnessConfig::default());
        match m.status {
            Status::Ok(rows) => assert!(rows > 0),
            other => panic!("unexpected status {other:?}"),
        }
        assert!(m.requests > 0);
    }

    #[test]
    fn all_systems_build() {
        let cfg = lubm::LubmConfig::with_universities(2);
        let graphs = lubm::generate_all(&cfg);
        for system in System::ALL {
            let e = system.build(&graphs, NetworkProfile::instant(), Duration::from_secs(5));
            assert!(!e.name().is_empty());
        }
    }
}
