//! Figure 10: LargeRDFBench runtimes (13 endpoints) — simple, complex,
//! and large query categories.
//!
//! Expected shape (paper): on simple queries the systems are comparable
//! (index-based systems sometimes win; Lusail leads on S13/S14, the two
//! with larger intermediate results). On complex and large queries Lusail
//! wins broadly; C5/B5/B6 are `NS` for every baseline; FedX/HiBISCuS time
//! out on the heaviest (C1, C9, several B's).

use lusail_bench::{bench_scale, run_grid, HarnessConfig, System};
use lusail_federation::NetworkProfile;
use lusail_workloads::largerdf;

fn main() {
    let cfg = largerdf::LargeRdfConfig {
        scale: bench_scale(),
        ..Default::default()
    };
    let graphs = largerdf::generate_all(&cfg);
    let harness = HarnessConfig::default();
    let profile = NetworkProfile::local_cluster();
    run_grid(
        "Figure 10 (top): LargeRDFBench simple queries — seconds (requests)",
        &graphs,
        profile,
        &System::ALL,
        &largerdf::simple_queries(),
        &harness,
    );
    run_grid(
        "Figure 10 (middle): LargeRDFBench complex queries — seconds (requests)",
        &graphs,
        profile,
        &System::ALL,
        &largerdf::complex_queries(),
        &harness,
    );
    run_grid(
        "Figure 10 (bottom): LargeRDFBench large queries — seconds (requests)",
        &graphs,
        profile,
        &System::ALL,
        &largerdf::big_queries(),
        &harness,
    );
    println!(
        "\nLegend: TO = timed out ({}s limit), NS = not supported.",
        harness.timeout.as_secs()
    );
}
