//! Communication-cost comparison (the extended version of the paper, cited
//! as \[3\], shows Lusail reduces the number of remote requests and the
//! volume of communicated data versus FedX — the §1 motivation quantifies
//! it as up to 6 orders of magnitude more requests at 4 endpoints).
//!
//! This binary reports, per benchmark query: requests, bytes shipped to
//! endpoints (queries + bindings), and bytes shipped back (results), for
//! Lusail and FedX.

use lusail_bench::{bench_scale, build_with_federation, write_bench_json, BenchRecord, System};
use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::{Federation, HttpConfig, HttpEndpoint, NetworkProfile, SparqlEndpoint};
use lusail_server::{ServerConfig, SparqlServer};
use lusail_store::Store;
use lusail_workloads::{largerdf, lubm, qfed, BenchQuery};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn report(title: &str, graphs: &[(String, lusail_rdf::Graph)], queries: &[BenchQuery]) {
    println!("\n=== {title} ===");
    println!(
        "{:<9}{:>10}{:>12}{:>12}{:>10}{:>12}{:>12}{:>9}",
        "query", "Lu reqs", "Lu out(B)", "Lu in(B)", "FX reqs", "FX out(B)", "FX in(B)", "ratio"
    );
    for q in queries {
        let parsed = q.parse();
        let mut cells = Vec::new();
        for system in [System::Lusail, System::FedX] {
            let under_test = build_with_federation(
                system,
                graphs,
                NetworkProfile::instant(),
                Duration::from_secs(60),
            );
            // Warm run loads caches; the measured run is the steady state.
            let _ = under_test.engine.execute(&parsed);
            under_test.federation.reset_traffic();
            let ok = under_test.engine.execute(&parsed).is_ok();
            let t = under_test.federation.total_traffic();
            cells.push((ok, t.requests, t.bytes_sent, t.bytes_received));
        }
        let (l_ok, l_req, l_out, l_in) = cells[0];
        let (f_ok, f_req, f_out, f_in) = cells[1];
        let ratio = if l_req > 0 && f_ok {
            f_req as f64 / l_req as f64
        } else {
            f64::NAN
        };
        let tag = |ok: bool, v: u64| if ok { v.to_string() } else { "ERR".to_string() };
        println!(
            "{:<9}{:>10}{:>12}{:>12}{:>10}{:>12}{:>12}{:>8.1}x",
            q.name,
            tag(l_ok, l_req),
            tag(l_ok, l_out),
            tag(l_ok, l_in),
            tag(f_ok, f_req),
            tag(f_ok, f_out),
            tag(f_ok, f_in),
            ratio
        );
    }
}

/// Loopback codec comparison: the same federation served over real HTTP
/// sockets, once with the binary codec negotiated and once forced to
/// SPARQL JSON. Result bytes on the wire (response bodies) come from the
/// endpoints' codec counters, so the reduction is measured, not modeled.
fn loopback_codec_report(
    tag: &str,
    graphs: &[(String, lusail_rdf::Graph)],
    queries: &[BenchQuery],
    records: &mut Vec<BenchRecord>,
) {
    let handles: Vec<_> = graphs
        .iter()
        .map(|(_, g)| {
            SparqlServer::bind("127.0.0.1:0", Store::from_graph(g), ServerConfig::default())
                .expect("bind loopback server")
                .spawn()
        })
        .collect();
    println!("\n=== {tag}: wire bytes over loopback HTTP, binary codec vs SPARQL JSON ===");
    println!(
        "{:<9}{:>12}{:>12}{:>9}{:>10}{:>10}{:>8}",
        "query", "bin(B)", "json(B)", "saved", "bin(ms)", "json(ms)", "rows"
    );
    for q in queries {
        let parsed = q.parse();
        let mut cells: Vec<(u64, f64, usize)> = Vec::new();
        for (codec, offer) in [("binary", true), ("json", false)] {
            let endpoints: Vec<Arc<dyn SparqlEndpoint>> = graphs
                .iter()
                .zip(&handles)
                .map(|((name, _), h)| {
                    Arc::new(
                        HttpEndpoint::new(name.clone(), &h.url())
                            .expect("loopback url")
                            .with_config(HttpConfig {
                                offer_binary: offer,
                                ..Default::default()
                            }),
                    ) as Arc<dyn SparqlEndpoint>
                })
                .collect();
            let fed = Federation::new(endpoints);
            let engine = LusailEngine::new(
                fed.clone(),
                LusailConfig {
                    timeout: Some(Duration::from_secs(60)),
                    ..Default::default()
                },
            );
            // Warm run loads caches; the measured run is the steady state.
            let _ = engine.execute(&parsed);
            let before = fed.total_codec().unwrap_or_default();
            let start = Instant::now();
            let rows = engine.execute(&parsed).map(|r| r.len()).unwrap_or(0);
            let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;
            let after = fed.total_codec().unwrap_or_default();
            let wire = (after.binary_bytes_in + after.json_bytes_in)
                - (before.binary_bytes_in + before.json_bytes_in);
            records.push(BenchRecord {
                query: format!("{tag}/{}", q.name),
                wire_bytes: wire,
                rows: rows as u64,
                elapsed_ms,
                codec: codec.to_string(),
            });
            cells.push((wire, elapsed_ms, rows));
        }
        let (bin_b, bin_ms, rows) = cells[0];
        let (json_b, json_ms, _) = cells[1];
        let saved = if json_b > 0 {
            format!("{:.0}%", 100.0 * (1.0 - bin_b as f64 / json_b as f64))
        } else {
            "-".to_string()
        };
        println!(
            "{:<9}{:>12}{:>12}{:>9}{:>10.1}{:>10.1}{:>8}",
            q.name, bin_b, json_b, saved, bin_ms, json_ms, rows
        );
    }
    for h in handles {
        h.shutdown();
    }
}

fn main() {
    let scale = bench_scale();
    let lubm_graphs = lubm::generate_all(&lubm::LubmConfig::with_universities(4));
    report(
        "LUBM (4 endpoints): requests & bytes, Lusail vs FedX",
        &lubm_graphs,
        &lubm::queries(),
    );

    let qcfg = qfed::QfedConfig {
        drugs: (400.0 * scale) as usize,
        diseases: (120.0 * scale) as usize,
        side_effects: (200.0 * scale) as usize,
        labels: (150.0 * scale) as usize,
        seed: 7,
    };
    let qfed_graphs = qfed::generate_all(&qcfg);
    report(
        "QFed: requests & bytes, Lusail vs FedX",
        &qfed_graphs,
        &qfed::queries(),
    );

    let mut records = Vec::new();
    loopback_codec_report("lubm", &lubm_graphs, &lubm::queries(), &mut records);
    loopback_codec_report("qfed", &qfed_graphs, &qfed::queries(), &mut records);
    match write_bench_json("comm_costs", &records) {
        Ok(path) => println!("\nwrote {path} ({} records)", records.len()),
        Err(e) => eprintln!("\nfailed to write BENCH_comm_costs.json: {e}"),
    }

    let lcfg = largerdf::LargeRdfConfig {
        scale,
        ..Default::default()
    };
    let lrb_graphs = largerdf::generate_all(&lcfg);
    let subset: Vec<BenchQuery> = largerdf::all_queries()
        .into_iter()
        .filter(|q| ["S13", "C1", "C9", "B1", "B3", "B8"].contains(&q.name))
        .collect();
    report(
        "LargeRDFBench subset: requests & bytes, Lusail vs FedX",
        &lrb_graphs,
        &subset,
    );

    println!(
        "\n'ratio' = FedX requests / Lusail requests on the cached steady state. The paper's\n\
         §1 reports this growing to 6 orders of magnitude as endpoints scale; re-run with\n\
         more LUBM universities (see fig9_lubm/fig12_scaling) to watch the trend."
    );
}
