//! Join-throughput microbench: string-keyed hashing vs the interned ID
//! path.
//!
//! The engine's joins intern both inputs into a query-scoped dictionary
//! and hash fixed-width `u32` slot ids; before that change every probe
//! re-hashed full term strings. This bench holds the data constant and
//! compares the two approaches directly: a baseline string-keyed hash
//! join (the old algorithm, reconstructed here) against `Relation::join`
//! (interned) and `parallel_join` (interned + partitioned). Results also
//! land in `BENCH_micro_joins.json` for cross-revision tracking.

use lusail_bench::{bench_scale, write_bench_json, BenchRecord};
use lusail_core::sape::parallel_join;
use lusail_federation::RequestHandler;
use lusail_rdf::fxhash::FxHashMap;
use lusail_rdf::Term;
use lusail_sparql::ast::Variable;
use lusail_sparql::solution::{Relation, Row};
use std::time::Instant;

/// Four-column relation shaped like a LUBM star-query branch: one join-key
/// variable whose IRIs repeat with multiplicity `mult` (a student appears
/// once per course taken), plus three payload columns unique per row.
fn make_rel(vars: [&str; 4], rows: usize, key_offset: usize, mult: usize) -> Relation {
    let mut rel = Relation::new(vars.iter().map(|v| Variable::new(*v)).collect());
    let distinct = (rows / mult).max(1);
    for i in 0..rows {
        let e = (i % distinct) + key_offset;
        rel.push(vec![
            Some(Term::iri(format!(
                "http://www.department{}.university{}.edu/entity{e}",
                e % 17,
                e % 23
            ))),
            Some(Term::iri(format!("http://example.org/{}/p{i}", vars[1]))),
            Some(Term::iri(format!("http://example.org/{}/p{i}", vars[2]))),
            Some(Term::literal(format!("payload value {i} for {}", vars[3]))),
        ]);
    }
    rel
}

/// The pre-interning join, reconstructed: hash full term strings for
/// build *and* probe, and merge each output row by scanning the input
/// headers per cell — exactly what `Relation::join` did before the
/// interned path landed.
fn string_join(a: &Relation, b: &Relation) -> Relation {
    let shared: Vec<Variable> = a
        .vars()
        .iter()
        .filter(|v| b.index_of(v).is_some())
        .cloned()
        .collect();
    let a_idx: Vec<usize> = shared.iter().map(|v| a.index_of(v).unwrap()).collect();
    let b_idx: Vec<usize> = shared.iter().map(|v| b.index_of(v).unwrap()).collect();
    let mut out_vars = a.vars().to_vec();
    for v in b.vars() {
        if !out_vars.contains(v) {
            out_vars.push(v.clone());
        }
    }
    let mut table: FxHashMap<Vec<&Term>, Vec<&Row>> = FxHashMap::default();
    for row in b.rows() {
        let key: Option<Vec<&Term>> = b_idx.iter().map(|&j| row[j].as_ref()).collect();
        if let Some(k) = key {
            table.entry(k).or_default().push(row);
        }
    }
    let mut out = Relation::new(out_vars.clone());
    for row in a.rows() {
        let key: Option<Vec<&Term>> = a_idx.iter().map(|&j| row[j].as_ref()).collect();
        let Some(matches) = key.as_ref().and_then(|k| table.get(k)) else {
            continue;
        };
        for brow in matches {
            let merged: Row = out_vars
                .iter()
                .map(|v| {
                    let from_a = a.index_of(v).and_then(|i| row[i].clone());
                    if from_a.is_some() {
                        from_a
                    } else {
                        b.index_of(v).and_then(|i| brow[i].clone())
                    }
                })
                .collect();
            out.push(merged);
        }
    }
    out
}

/// Three runs per the paper's protocol: first warms, last two average.
fn timed(mut f: impl FnMut() -> Relation) -> (Relation, f64) {
    let mut out = f();
    let mut total = 0.0;
    for _ in 0..2 {
        let start = Instant::now();
        out = f();
        total += start.elapsed().as_secs_f64() * 1000.0;
    }
    (out, total / 2.0)
}

fn main() {
    let scale = bench_scale();
    let handler = RequestHandler::new(4);
    let mut records = Vec::new();
    println!("=== join throughput: string-keyed vs interned IDs ===");
    println!(
        "{:<16}{:>12}{:>14}{:>12}{:>14}",
        "input", "codec", "elapsed(ms)", "out rows", "rows/sec"
    );
    for base in [10_000usize, 40_000] {
        let n = ((base as f64) * scale) as usize;
        // Each key appears 4× per side (star-query fan-out) and half the
        // distinct keys overlap, so matched keys emit 16 rows each: a
        // realistic output-heavy federated join.
        let mult = 4;
        let a = make_rel(["x", "y1", "y2", "y3"], n, 0, mult);
        let b = make_rel(["x", "z1", "z2", "z3"], n, n / (2 * mult), mult);
        let label = format!("join_{n}x{n}");
        let expected = string_join(&a, &b).len();
        let variants: [(&str, Box<dyn FnMut() -> Relation>); 3] = [
            ("string", Box::new(|| string_join(&a, &b))),
            ("id", Box::new(|| a.join(&b))),
            ("id-parallel", Box::new(|| parallel_join(&a, &b, &handler))),
        ];
        for (codec, f) in variants {
            let (out, ms) = timed(f);
            assert_eq!(out.len(), expected, "all variants must agree");
            let per_sec = if ms > 0.0 {
                out.len() as f64 / (ms / 1000.0)
            } else {
                f64::INFINITY
            };
            println!(
                "{:<16}{:>12}{:>14.2}{:>12}{:>14.0}",
                label,
                codec,
                ms,
                out.len(),
                per_sec
            );
            records.push(BenchRecord {
                query: label.clone(),
                wire_bytes: out.wire_size() as u64,
                rows: out.len() as u64,
                elapsed_ms: ms,
                codec: codec.to_string(),
            });
        }
    }
    match write_bench_json("micro_joins", &records) {
        Ok(path) => println!("\nwrote {path} ({} records)", records.len()),
        Err(e) => eprintln!("\nfailed to write BENCH_micro_joins.json: {e}"),
    }
}
