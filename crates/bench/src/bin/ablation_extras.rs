//! Additional design-choice ablations (DESIGN.md §"Key design decisions"):
//!
//! 1. **Bound-join block size** — how many bindings each `VALUES` block of
//!    a delayed subquery carries. Small blocks multiply requests (FedX
//!    ships 15 per block and pays for it at WAN latencies); Lusail's
//!    default is 512.
//! 2. **DP join ordering vs. input order** — the benefit of the paper's
//!    dynamic-programming enumeration over joining subquery results in
//!    arrival order.

use lusail_bench::bench_scale;
use lusail_core::sape::{dp_join_order, parallel_join};
use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::{NetworkProfile, RequestHandler};
use lusail_rdf::Term;
use lusail_sparql::ast::Variable;
use lusail_sparql::solution::Relation;
use lusail_workloads::{federation_from_graphs, largerdf};
use std::time::Instant;

fn main() {
    block_size_sweep();
    join_order_comparison();
}

/// Sweep the `VALUES` block size on a delayed-subquery-heavy query (B3)
/// under the geo profile, reporting time and requests.
fn block_size_sweep() {
    let cfg = largerdf::LargeRdfConfig {
        scale: bench_scale(),
        ..Default::default()
    };
    let graphs = largerdf::generate_all(&cfg);
    let query = largerdf::all_queries()
        .into_iter()
        .find(|q| q.name == "B3")
        .unwrap()
        .parse();

    println!("Ablation 1: bound-join block size (LargeRDFBench B3, geo profile)");
    println!("{:<12}{:>12}{:>12}", "block size", "time (ms)", "requests");
    for block in [16usize, 64, 256, 512, 2048] {
        let engine = LusailEngine::new(
            federation_from_graphs(graphs.clone(), NetworkProfile::geo_distributed()),
            LusailConfig {
                bound_block_size: block,
                ..Default::default()
            },
        );
        engine.execute(&query).unwrap(); // warm caches
        engine.federation().reset_traffic();
        let t = Instant::now();
        engine.execute(&query).unwrap();
        let ms = t.elapsed().as_secs_f64() * 1000.0;
        let reqs = engine.federation().total_traffic().requests;
        println!("{block:<12}{ms:>12.2}{reqs:>12}");
    }
    println!();
}

/// Join three chain relations of skewed sizes in DP order vs input order.
fn join_order_comparison() {
    let v = |n: &str| Variable::new(n);
    let mk = |vars: [&str; 2], pfx: [&str; 2], n: usize| {
        let mut r = Relation::new(vars.iter().map(|x| v(x)).collect());
        for i in 0..n {
            r.push(vec![
                Some(Term::iri(format!("http://{}/{}", pfx[0], i % 3000))),
                Some(Term::iri(format!("http://{}/{}", pfx[1], i % 3000))),
            ]);
        }
        r
    };
    // A bad input order: the two big relations first (their join fans out
    // before the small filter relation prunes it).
    let big_a = mk(["a", "b"], ["a", "b"], 6000);
    let big_b = mk(["b", "c"], ["b", "c"], 6000);
    let small = mk(["a", "d"], ["a", "d"], 60);
    let rels = [big_a, big_b, small];
    let handler = RequestHandler::per_core();

    let t = Instant::now();
    let mut acc = rels[0].clone();
    for r in &rels[1..] {
        acc = parallel_join(&acc, r, &handler);
    }
    let naive_ms = t.elapsed().as_secs_f64() * 1000.0;
    let naive_rows = acc.len();

    let order = dp_join_order(&rels);
    let t = Instant::now();
    let mut acc = rels[order[0]].clone();
    for &i in &order[1..] {
        acc = parallel_join(&acc, &rels[i], &handler);
    }
    let dp_ms = t.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(acc.len(), naive_rows, "orders must agree on the result");

    println!("Ablation 2: join ordering (two 6k relations + one 60-row filter)");
    println!("{:<16}{:>12}{:>14}", "order", "time (ms)", "result rows");
    println!("{:<16}{:>12.2}{:>14}", "input order", naive_ms, naive_rows);
    println!("{:<16}{:>12.2}{:>14}", "DP (paper)", dp_ms, naive_rows);
    println!(
        "\nDP order chosen: {order:?} (the small relation joins early, pruning the build side)"
    );
}
