//! Figure 11: the geo-distributed federation (Azure, 7 regions in the
//! paper; the `geo_distributed` network profile here).
//!
//! Expected shape (paper): the higher communication cost hurts everyone,
//! but FedX/HiBISCuS — which ship bindings one block at a time — degrade
//! by an order of magnitude, while Lusail's runtimes grow only modestly.
//! Lusail is the only system answering every complex and large query.

use lusail_bench::{bench_scale, run_grid, HarnessConfig, System};
use lusail_federation::NetworkProfile;
use lusail_workloads::{largerdf, lubm};

fn main() {
    let harness = HarnessConfig::default();
    let geo = NetworkProfile::geo_distributed();

    let cfg = largerdf::LargeRdfConfig {
        scale: bench_scale(),
        ..Default::default()
    };
    let graphs = largerdf::generate_all(&cfg);
    run_grid(
        "Figure 11(a): geo-distributed LargeRDFBench complex queries — seconds (requests)",
        &graphs,
        geo,
        &System::ALL,
        &largerdf::complex_queries(),
        &harness,
    );
    run_grid(
        "Figure 11(b): geo-distributed LargeRDFBench large queries — seconds (requests)",
        &graphs,
        geo,
        &System::ALL,
        &largerdf::big_queries(),
        &harness,
    );

    let lubm_cfg = lubm::LubmConfig::with_universities(2);
    let lubm_graphs = lubm::generate_all(&lubm_cfg);
    run_grid(
        "Figure 11(c): geo-distributed LUBM, 2 endpoints — seconds (requests)",
        &lubm_graphs,
        geo,
        &System::ALL,
        &lubm::queries(),
        &harness,
    );
    println!(
        "\nLegend: TO = timed out ({}s limit), NS = not supported.",
        harness.timeout.as_secs()
    );
}
