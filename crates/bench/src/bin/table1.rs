//! Table 1: datasets used in the experiments.
//!
//! Prints the endpoint/triple-count table for the three benchmarks at the
//! harness scale, next to the paper's original counts so the proportional
//! scaling is visible.

use lusail_bench::bench_scale;
use lusail_workloads::{largerdf, lubm, qfed};

fn main() {
    let scale = bench_scale();
    println!("Table 1: Datasets used in experiments (scale factor {scale})");
    println!(
        "{:<16}{:<24}{:>12}{:>18}",
        "Benchmark", "Endpoint", "Triples", "Paper's triples"
    );

    // QFed.
    let qcfg = qfed::QfedConfig {
        drugs: (400.0 * scale) as usize,
        diseases: (120.0 * scale) as usize,
        side_effects: (200.0 * scale) as usize,
        labels: (150.0 * scale) as usize,
        seed: 7,
    };
    let paper_qfed = [164_276usize, 91_182, 766_920, 193_249];
    let qfed_graphs = qfed::generate_all(&qcfg);
    let mut total = 0;
    // Paper order: DailyMed, Diseasome, DrugBank, Sider.
    for ((name, g), paper) in
        qfed_graphs
            .iter()
            .zip([paper_qfed[0], paper_qfed[1], paper_qfed[2], paper_qfed[3]])
    {
        println!("{:<16}{:<24}{:>12}{:>18}", "QFed", name, g.len(), paper);
        total += g.len();
    }
    println!(
        "{:<16}{:<24}{:>12}{:>18}",
        "", "Total Triples", total, 1_215_627
    );

    // LargeRDFBench.
    let lcfg = largerdf::LargeRdfConfig {
        scale,
        ..Default::default()
    };
    let paper_lrb: &[(&str, usize)] = &[
        ("LinkedTCGA-M", 415_030_327),
        ("LinkedTCGA-E", 344_576_146),
        ("LinkedTCGA-A", 35_329_868),
        ("ChEBI", 4_772_706),
        ("DBPedia-Subset", 42_849_609),
        ("DrugBank", 517_023),
        ("GeoNames", 107_950_085),
        ("Jamendo", 1_049_647),
        ("KEGG", 1_090_830),
        ("LinkedMDB", 6_147_996),
        ("NewYorkTimes", 335_198),
        ("SemanticWebDogFood", 103_595),
        ("Affymetrix", 44_207_146),
    ];
    let lrb_graphs = largerdf::generate_all(&lcfg);
    let mut total = 0;
    for (name, g) in &lrb_graphs {
        let paper = paper_lrb
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        println!(
            "{:<16}{:<24}{:>12}{:>18}",
            "LargeRDFBench",
            name,
            g.len(),
            paper
        );
        total += g.len();
    }
    println!(
        "{:<16}{:<24}{:>12}{:>18}",
        "", "Total Triples", total, 1_003_960_176
    );

    // LUBM: the paper uses 256 universities × ~138k triples. We print the
    // per-university size at this scale and the 256-university total.
    let ucfg = lubm::LubmConfig {
        universities: 4,
        ..Default::default()
    };
    let one = lubm::generate_university(&ucfg, 0).len();
    println!(
        "{:<16}{:<24}{:>12}{:>18}",
        "LUBM", "per university", one, 138_000
    );
    println!(
        "{:<16}{:<24}{:>12}{:>18}",
        "",
        "256 Universities",
        one * 256,
        35_306_161
    );
}
