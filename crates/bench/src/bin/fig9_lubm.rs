//! Figure 9: LUBM query runtimes on (a) two and (b) four endpoints.
//!
//! Expected shape (paper): the universities share one schema, so FedX and
//! HiBISCuS form no exclusive groups and fall back to per-pattern bound
//! joins — their request counts and runtimes explode as endpoints go from
//! 2 to 4, while Lusail ships Q1/Q2 whole to each endpoint and decomposes
//! Q3/Q4 into two subqueries with the generic one delayed. Lusail is up to
//! three orders of magnitude faster on Q1, Q2, and Q4.

use lusail_bench::{bench_scale, run_grid, HarnessConfig, System};
use lusail_federation::NetworkProfile;
use lusail_workloads::lubm;

fn main() {
    let harness = HarnessConfig::default();
    for endpoints in [2usize, 4] {
        let cfg = lubm::LubmConfig {
            universities: endpoints,
            scale: bench_scale(),
            ..Default::default()
        };
        let graphs = lubm::generate_all(&cfg);
        run_grid(
            &format!(
                "Figure 9({}): LUBM, {endpoints} endpoints — seconds (requests)",
                if endpoints == 2 { "a" } else { "b" }
            ),
            &graphs,
            NetworkProfile::local_cluster(),
            &System::ALL,
            &lubm::queries(),
            &harness,
        );
    }
    println!(
        "\nLegend: TO = timed out ({}s limit), NS = not supported.",
        harness.timeout.as_secs()
    );
}
