//! Figure 13: evaluating the delayed-subquery threshold — μ, μ+σ, μ+2σ,
//! and outliers-only — on the geo-distributed LargeRDFBench deployment,
//! reporting the total time per query category.
//!
//! Expected shape (paper): μ+2σ and outliers-only delay too little and
//! lose on simple/complex queries (communication explodes); μ delays too
//! much and loses on large queries (parallelism starves); μ+σ is
//! consistently good — which is why it is Lusail's default.

use lusail_bench::{bench_scale, HarnessConfig};
use lusail_core::{DelayThreshold, LusailConfig, LusailEngine};
use lusail_federation::NetworkProfile;
use lusail_workloads::{federation_from_graphs, largerdf, BenchQuery};
use std::time::Instant;

fn total_time(
    graphs: &[(String, lusail_rdf::Graph)],
    queries: &[BenchQuery],
    threshold: DelayThreshold,
    harness: &HarnessConfig,
) -> (f64, usize) {
    let engine = LusailEngine::new(
        federation_from_graphs(graphs.to_vec(), NetworkProfile::geo_distributed()),
        LusailConfig {
            delay_threshold: threshold,
            timeout: Some(harness.timeout),
            ..Default::default()
        },
    );
    let mut total = 0.0;
    let mut timeouts = 0;
    for q in queries {
        let parsed = q.parse();
        // Warm-up, then one measured run (the category totals dominate any
        // run-to-run noise).
        let _ = engine.execute(&parsed);
        let start = Instant::now();
        match engine.execute(&parsed) {
            Ok(_) => total += start.elapsed().as_secs_f64(),
            Err(_) => {
                total += harness.timeout.as_secs_f64();
                timeouts += 1;
            }
        }
    }
    (total, timeouts)
}

fn main() {
    let cfg = largerdf::LargeRdfConfig {
        scale: bench_scale(),
        ..Default::default()
    };
    let graphs = largerdf::generate_all(&cfg);
    let harness = HarnessConfig::default();
    let thresholds = [
        DelayThreshold::Mu,
        DelayThreshold::MuSigma,
        DelayThreshold::Mu2Sigma,
        DelayThreshold::OutliersOnly,
    ];

    println!("Figure 13: total category time (seconds) per delay threshold");
    println!(
        "{:<10}{:>12}{:>12}{:>12}{:>12}",
        "category",
        thresholds[0].label(),
        thresholds[1].label(),
        thresholds[2].label(),
        thresholds[3].label()
    );
    for (cat, queries) in [
        ("simple", largerdf::simple_queries()),
        ("complex", largerdf::complex_queries()),
        ("large", largerdf::big_queries()),
    ] {
        print!("{cat:<10}");
        for t in thresholds {
            let (secs, timeouts) = total_time(&graphs, &queries, t, &harness);
            if timeouts > 0 {
                print!("{:>12}", format!("{secs:.2}({timeouts}TO)"));
            } else {
                print!("{secs:>12.2}");
            }
        }
        println!();
    }
}
