//! Table 2: query runtimes on "real" independently deployed endpoints —
//! the Bio2RDF-style R1–R5 queries plus six LargeRDFBench queries, Lusail
//! vs FedX, over the geo-distributed network profile (real endpoints are
//! remote).
//!
//! Expected shape (paper): FedX wins the two trivially selective queries
//! (S3, S4) but fails or is 1–2 orders of magnitude slower elsewhere;
//! Lusail answers everything.

use lusail_bench::{bench_scale, build_on_federation, measure, print_table, HarnessConfig, System};
use lusail_federation::{EndpointLimits, NetworkProfile};
use lusail_workloads::{bio2rdf, federation_from_graphs_limited, largerdf, BenchQuery};

/// Real public endpoints impose operational limits; this is what turns
/// FedX's giant bound-join requests into the paper's "RE" rows. 8 KiB is
/// a typical HTTP GET query-string ceiling.
const REAL_ENDPOINT_LIMITS: EndpointLimits = EndpointLimits {
    max_request_bytes: Some(8_192),
    max_result_rows: Some(100_000),
};

fn run_limited_grid(
    title: &str,
    graphs: &[(String, lusail_rdf::Graph)],
    queries: &[BenchQuery],
    harness: &HarnessConfig,
) {
    let systems = [System::Lusail, System::FedX];
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); queries.len()];
    for system in systems {
        let fed = federation_from_graphs_limited(
            graphs.to_vec(),
            NetworkProfile::geo_distributed(),
            REAL_ENDPOINT_LIMITS,
        );
        let under_test = build_on_federation(system, fed, harness.timeout);
        for (qi, query) in queries.iter().enumerate() {
            let m = measure(&under_test, query, harness);
            cells[qi].push(format!("{} ({} rq)", m.cell(), m.requests));
        }
    }
    let names: Vec<&str> = queries.iter().map(|q| q.name).collect();
    print_table(title, &names, &["Lusail", "FedX"], &cells);
}

fn main() {
    let harness = HarnessConfig::default();

    let bio_cfg = bio2rdf::Bio2RdfConfig::default();
    let bio_graphs = bio2rdf::generate_all(&bio_cfg);
    run_limited_grid(
        "Table 2 (left): Bio2RDF R1–R5 — seconds (requests)",
        &bio_graphs,
        &bio2rdf::queries(),
        &harness,
    );

    let lrb_cfg = largerdf::LargeRdfConfig {
        scale: bench_scale(),
        ..Default::default()
    };
    let lrb_graphs = largerdf::generate_all(&lrb_cfg);
    let wanted = ["S3", "S4", "S7", "S10", "S14", "C9"];
    let queries: Vec<_> = largerdf::all_queries()
        .into_iter()
        .filter(|q| wanted.contains(&q.name))
        .collect();
    run_limited_grid(
        "Table 2 (right): LargeRDFBench subset — seconds (requests)",
        &lrb_graphs,
        &queries,
        &harness,
    );
    println!(
        "\nEndpoints impose real-server limits ({} byte requests max). Legend: TO = timed\nout ({}s), NS = not supported, RE = runtime error (endpoint rejected a request).",
        REAL_ENDPOINT_LIMITS.max_request_bytes.unwrap(),
        harness.timeout.as_secs()
    );
}
