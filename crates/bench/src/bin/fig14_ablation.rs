//! Figure 14: the effect of LADE and SAPE — FedX as baseline, Lusail with
//! LADE only, and Lusail with LADE + SAPE, on two queries from each
//! benchmark.
//!
//! Expected shape (paper): LADE alone already beats FedX by shifting
//! intermediate-result computation to the endpoints (up to three orders
//! of magnitude); adding SAPE always improves over LADE alone.

use lusail_bench::{bench_scale, build_with_federation, measure, HarnessConfig, System};
use lusail_core::{LusailConfig, LusailEngine, SapeMode};
use lusail_federation::{Federation, NetworkProfile};
use lusail_workloads::{federation_from_graphs, largerdf, lubm, qfed, BenchQuery};

fn lusail_mode(
    graphs: &[(String, lusail_rdf::Graph)],
    mode: SapeMode,
    harness: &HarnessConfig,
) -> (Box<dyn lusail_baselines::FederatedEngine>, Federation) {
    let fed = federation_from_graphs(graphs.to_vec(), NetworkProfile::local_cluster());
    let engine = LusailEngine::new(
        fed.clone(),
        LusailConfig {
            sape_mode: mode,
            timeout: Some(harness.timeout),
            ..Default::default()
        },
    );
    (Box::new(engine), fed)
}

fn main() {
    let harness = HarnessConfig::default();
    let scale = bench_scale();

    let qfed_cfg = qfed::QfedConfig {
        drugs: (400.0 * scale) as usize,
        diseases: (120.0 * scale) as usize,
        side_effects: (200.0 * scale) as usize,
        labels: (150.0 * scale) as usize,
        seed: 7,
    };
    let qfed_graphs = qfed::generate_all(&qfed_cfg);
    let lubm_graphs = lubm::generate_all(&lubm::LubmConfig::with_universities(4));
    let lrb_cfg = largerdf::LargeRdfConfig {
        scale,
        ..Default::default()
    };
    let lrb_graphs = largerdf::generate_all(&lrb_cfg);

    // Two queries per benchmark, as in the paper.
    let pick = |queries: Vec<BenchQuery>, names: [&str; 2]| -> Vec<BenchQuery> {
        queries
            .into_iter()
            .filter(|q| names.contains(&q.name))
            .collect()
    };
    type Workload<'a> = (&'a str, &'a [(String, lusail_rdf::Graph)], Vec<BenchQuery>);
    let workloads: Vec<Workload> = vec![
        (
            "QFed",
            &qfed_graphs,
            pick(qfed::queries(), ["C2P2B", "C2P2OF"]),
        ),
        ("LUBM", &lubm_graphs, pick(lubm::queries(), ["Q2", "Q4"])),
        (
            "LargeRDFBench",
            &lrb_graphs,
            pick(largerdf::all_queries(), ["C9", "B3"]),
        ),
    ];

    println!("Figure 14: FedX vs LADE vs LADE+SAPE — seconds (TO = timeout)");
    println!(
        "{:<16}{:<10}{:>12}{:>12}{:>12}",
        "benchmark", "query", "FedX", "LADE", "LADE+SAPE"
    );
    for (bench_name, graphs, queries) in workloads {
        for q in &queries {
            let fedx = build_with_federation(
                System::FedX,
                graphs,
                NetworkProfile::local_cluster(),
                harness.timeout,
            );
            let m_fedx = measure(&fedx, q, &harness);

            let (lade_engine, lade_fed) = lusail_mode(graphs, SapeMode::LadeOnly, &harness);
            let lade = lusail_bench::EngineUnderTest {
                engine: lade_engine,
                federation: lade_fed,
            };
            let m_lade = measure(&lade, q, &harness);

            let (full_engine, full_fed) = lusail_mode(graphs, SapeMode::Full, &harness);
            let full = lusail_bench::EngineUnderTest {
                engine: full_engine,
                federation: full_fed,
            };
            let m_full = measure(&full, q, &harness);

            println!(
                "{:<16}{:<10}{:>12}{:>12}{:>12}",
                bench_name,
                q.name,
                m_fedx.cell(),
                m_lade.cell(),
                m_full.cell()
            );
        }
    }
}
