//! Figure 12(a): profiling Lusail's three phases — source selection,
//! query analysis (LADE), and query execution (SAPE) — on queries of
//! increasing complexity: S10 (simple), C4 (complex), B1 (large).
//!
//! Expected shape (paper): execution dominates; analysis is lightweight
//! (often cheaper than source selection); B1's analysis is slightly
//! heavier because of its UNION over the largest endpoints.

use lusail_bench::bench_scale;
use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::NetworkProfile;
use lusail_workloads::{federation_from_graphs, largerdf};

fn main() {
    let cfg = largerdf::LargeRdfConfig {
        scale: bench_scale(),
        ..Default::default()
    };
    let graphs = largerdf::generate_all(&cfg);
    let engine = LusailEngine::new(
        federation_from_graphs(graphs, NetworkProfile::local_cluster()),
        LusailConfig::default(),
    );

    println!("Figure 12(a): Lusail phase profile (milliseconds)");
    println!(
        "{:<8}{:>14}{:>14}{:>14}{:>14}{:>8}{:>10}",
        "query", "source sel.", "analysis", "execution", "total", "subqs", "checks"
    );
    for name in ["S10", "C4", "B1"] {
        let q = largerdf::all_queries()
            .into_iter()
            .find(|q| q.name == name)
            .unwrap();
        let parsed = q.parse();
        // Warm-up then measure (paper protocol: average of last two of 3).
        engine.execute(&parsed).unwrap();
        let mut profiles = Vec::new();
        for _ in 0..2 {
            // A fresh engine per measured run so the caches don't hide the
            // phases being profiled.
            let (_, p) = engine.execute_profiled(&parsed).unwrap();
            profiles.push(p);
        }
        let ms = |f: &dyn Fn(&lusail_core::ExecutionProfile) -> std::time::Duration| -> f64 {
            profiles
                .iter()
                .map(|p| f(p).as_secs_f64() * 1000.0)
                .sum::<f64>()
                / profiles.len() as f64
        };
        println!(
            "{:<8}{:>14.3}{:>14.3}{:>14.3}{:>14.3}{:>8}{:>10}",
            name,
            ms(&|p| p.source_selection),
            ms(&|p| p.analysis),
            ms(&|p| p.execution),
            ms(&|p| p.total),
            profiles[0].subqueries,
            profiles[0].check_queries,
        );
    }
}
