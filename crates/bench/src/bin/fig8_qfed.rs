//! Figure 8: query runtimes on the QFed benchmark (4 endpoints).
//!
//! Expected shape (paper): Lusail beats FedX and HiBISCuS on all queries;
//! filtered variants (…F) are fast for everyone; the big-literal variants
//! (C2P2B, C2P2BO) blow up FedX/HiBISCuS communication — they time out or
//! run orders of magnitude slower — while Lusail answers in seconds.
//! SPLENDID times out on everything except C2P2.

use lusail_bench::{bench_scale, run_grid, HarnessConfig, System};
use lusail_federation::NetworkProfile;
use lusail_workloads::qfed;

fn main() {
    let scale = bench_scale();
    let cfg = qfed::QfedConfig {
        drugs: (400.0 * scale) as usize,
        diseases: (120.0 * scale) as usize,
        side_effects: (200.0 * scale) as usize,
        labels: (150.0 * scale) as usize,
        seed: 7,
    };
    let graphs = qfed::generate_all(&cfg);
    let harness = HarnessConfig::default();
    let queries = qfed::queries();
    run_grid(
        "Figure 8: QFed query runtimes, seconds (requests)",
        &graphs,
        NetworkProfile::local_cluster(),
        &System::ALL,
        &queries,
        &harness,
    );
    println!(
        "\nLegend: TO = timed out ({}s limit), NS = not supported.",
        harness.timeout.as_secs()
    );
}
