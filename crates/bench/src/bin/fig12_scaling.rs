//! Figure 12(b, c): Lusail's phases for LUBM Q3 and Q4 while scaling the
//! number of endpoints (4 → 256 in the paper; configurable here), with
//! and without the ASK/check-query cache.
//!
//! Expected shape (paper): source selection grows with the endpoint count
//! and execution dominates at scale; the cache helps, especially for the
//! more complex Q4 and at large endpoint counts.

use lusail_bench::bench_scale;
use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::NetworkProfile;
use lusail_workloads::{federation_from_graphs, lubm};

fn main() {
    let max: usize = std::env::var("LUSAIL_BENCH_MAX_ENDPOINTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let mut counts = vec![4usize, 16, 64, 256];
    counts.retain(|&c| c <= max);

    for (fig, qname, qidx) in [("12(b)", "Q3", 2usize), ("12(c)", "Q4", 3usize)] {
        println!("\nFigure {fig}: LUBM {qname}, scaling endpoints (milliseconds)");
        println!(
            "{:<10}{:>12}{:>12}{:>12}{:>14}{:>16}",
            "endpoints", "source", "analysis", "execution", "total+cache", "total w/o cache"
        );
        for &n in &counts {
            let cfg = lubm::LubmConfig {
                universities: n,
                scale: bench_scale(),
                ..Default::default()
            };
            let graphs = lubm::generate_all(&cfg);
            let query = lubm::queries()[qidx].parse();

            // With cache: warm-up run loads caches, then measure.
            let cached_engine = LusailEngine::new(
                federation_from_graphs(graphs.clone(), NetworkProfile::local_cluster()),
                LusailConfig::default(),
            );
            cached_engine.execute(&query).unwrap();
            let (_, cached) = cached_engine.execute_profiled(&query).unwrap();

            // Without cache: every run pays the analysis traffic.
            let uncached_engine = LusailEngine::new(
                federation_from_graphs(graphs, NetworkProfile::local_cluster()),
                LusailConfig::without_cache(),
            );
            uncached_engine.execute(&query).unwrap();
            let (_, uncached) = uncached_engine.execute_profiled(&query).unwrap();

            let ms = |d: std::time::Duration| d.as_secs_f64() * 1000.0;
            println!(
                "{:<10}{:>12.2}{:>12.2}{:>12.2}{:>14.2}{:>16.2}",
                n,
                ms(cached.source_selection),
                ms(cached.analysis),
                ms(cached.execution),
                ms(cached.total),
                ms(uncached.total),
            );
        }
    }
}
