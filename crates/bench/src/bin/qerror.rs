//! The §4.1 cardinality-estimation experiment: estimated vs actual
//! cardinalities of multi-pattern subqueries on LargeRDFBench, summarized
//! by the q-error metric (`max(e/a, a/e)`).
//!
//! Expected shape (paper): the min/sum/max model is accurate — the paper
//! reports a median q-error of 1.09 (optimal is 1).

use lusail_bench::bench_scale;
use lusail_core::sape::q_error;
use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::NetworkProfile;
use lusail_workloads::{federation_from_graphs, largerdf};

fn main() {
    let cfg = largerdf::LargeRdfConfig {
        scale: bench_scale(),
        ..Default::default()
    };
    let graphs = largerdf::generate_all(&cfg);
    let engine = LusailEngine::new(
        federation_from_graphs(graphs, NetworkProfile::instant()),
        LusailConfig::default(),
    );

    let mut qerrors: Vec<(String, usize, usize, f64)> = Vec::new();
    for q in largerdf::all_queries() {
        let parsed = q.parse();
        if let Ok((_, profile)) = engine.execute_profiled(&parsed) {
            for (sq, est, actual) in profile.estimates {
                qerrors.push((
                    format!("{}#sq{sq}", q.name),
                    est,
                    actual,
                    q_error(est, actual),
                ));
            }
        }
    }

    println!("Cardinality estimation accuracy (multi-pattern subqueries)");
    println!(
        "{:<14}{:>12}{:>12}{:>10}",
        "subquery", "estimated", "actual", "q-error"
    );
    for (name, est, actual, qe) in &qerrors {
        println!("{name:<14}{est:>12}{actual:>12}{qe:>10.3}");
    }

    let mut finite: Vec<f64> = qerrors
        .iter()
        .map(|(_, _, _, q)| *q)
        .filter(|q| q.is_finite())
        .collect();
    finite.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if finite.is_empty() {
        println!("\nno multi-pattern subqueries produced estimates");
        return;
    }
    let median = finite[finite.len() / 2];
    let p90 = finite[(finite.len() * 9 / 10).min(finite.len() - 1)];
    println!(
        "\nsubqueries: {}   median q-error: {:.3}   p90: {:.3}   (paper: median 1.09)",
        finite.len(),
        median,
        p90
    );
}
