//! `lusail` — command-line front end for the federated SPARQL engine.
//!
//! ```text
//! lusail query  --data a.nt --data b.ttl --query q.sparql [options]
//! lusail generate --benchmark lubm --out DIR [--scale F] [--endpoints N]
//! lusail info   --data a.nt --data b.ttl
//! ```
//!
//! Each `--data` file becomes one endpoint of the federation (N-Triples
//! `.nt` or Turtle `.ttl`, chosen by extension). `query` runs a SPARQL
//! file (or `--query-text`) through the chosen engine and prints the
//! solutions; `generate` materializes a benchmark's endpoints as
//! N-Triples files so they can be re-loaded or inspected; `info` prints
//! per-endpoint statistics.

use lusail_cli::{run, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args, &mut std::io::stdout()) {
        Ok(()) => {}
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", lusail_cli::USAGE);
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
