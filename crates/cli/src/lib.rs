//! The `lusail` CLI, exposed as a library so its argument parsing and
//! command logic are unit-testable.

use lusail_baselines::{FedX, FedXConfig, FederatedEngine, HiBiscus, Splendid};
use lusail_core::{CancelToken, LusailConfig, LusailEngine, ResultPolicy, RunContext};
use lusail_federation::{
    Federation, HttpConfig, HttpEndpoint, IntegrityRegistry, NetworkProfile, ReplicaConfig,
    ReplicaGroup, SimulatedEndpoint, SparqlEndpoint,
};
use lusail_rdf::{Graph, Term};
use lusail_server::federate::{FederateConfig, FederationService};
use lusail_server::ServerConfig;
use lusail_store::{Store, StoreStats};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// CLI usage text.
pub const USAGE: &str = "\
usage:
  lusail query    (--data FILE | --endpoint URL | --endpoint NAME=URL,URL,...)...
                  (--query FILE | --query-text SPARQL)
                  [--engine lusail|fedx|splendid|hibiscus]
                  [--profile instant|local|geo] [--timeout SECS]
                  [--retries N] [--backoff MS] [--hedge-after MS]
                  [--memory-budget BYTES] [--max-result-rows N]
                  [--format table|csv] [--explain] [--partial] [--stats]
  lusail serve    --data FILE... [--addr HOST:PORT] [--port N] [--workers N]
                  [--max-result-rows N]
  lusail serve    --federate
                  (--data FILE | --endpoint URL | --endpoint NAME=URL,URL,...)...
                  [--addr HOST:PORT] [--port N] [--workers N]
                  [--profile instant|local|geo] [--query-timeout SECS]
                  [--retries N] [--backoff MS] [--hedge-after MS]
                  [--memory-pool BYTES] [--query-budget BYTES] [--queue N]
                  [--client-max-inflight N] [--cache-ttl SECS]
                  [--cache-capacity N] [--max-result-rows N] [--partial]
                  [--drain-timeout SECS] [--watchdog-grace SECS]
  lusail generate --benchmark lubm|qfed|largerdf|bio2rdf --out DIR
                  [--scale F] [--endpoints N] [--seed N]
  lusail info     --data FILE...
  lusail search   --data FILE... --keywords 'WORD WORD...' [--top N]
  lusail snapshot --data FILE --out FILE.snap

For query, each --data file becomes one in-process endpoint (.nt =
N-Triples, .ttl = Turtle, .snap = snapshot) and each --endpoint URL a
remote HTTP SPARQL endpoint; the two can be mixed freely. serve merges
its --data files into one store and exposes it at http://ADDR/sparql.

An --endpoint of the form NAME=URL,URL,... declares a replica group:
equivalent mirrors behind one logical endpoint. Requests go to the
healthiest member (breaker state, then latency EWMA) and transparently
fail over to the next member on transport errors or an open breaker.
--hedge-after MS additionally duplicates a slow idempotent request on the
second-best member after MS milliseconds and takes the first success.
--retries and --backoff tune the per-member HTTP retry budget.

--partial (lusail engine only) returns the reachable subset of answers
when an endpoint is down, with a warning per skipped subquery, instead of
failing the whole query. --stats prints a per-endpoint health table
(breaker state, failures, retries, latency EWMA) after the results, with
one sub-row per replica-group member (failovers, hedges), and for the
lusail engine a memory section (peak accounted bytes per phase, spills).

--memory-budget BYTES (lusail engine only; suffixes KB/MB/GB and
KiB/MiB/GiB accepted, e.g. 8MiB) bounds the bytes of intermediate
results the engine materializes: joins spill to sorted temp-file runs
under pressure, and a truly exhausted budget fails fast with a
structured error (or truncates with a warning under --partial).
--max-result-rows N caps rows per subquery response, enforced while the
HTTP response streams in — a result-bomb endpoint is cut off mid-parse,
never buffered. For serve, --max-result-rows caps rows per response the
server streams out, with a truncation warning in the result head.

serve --federate runs the federator itself as a service: clients POST
SPARQL to http://ADDR/sparql and each query is executed through the full
LADE/SAPE pipeline against the configured federation (--data files and
--endpoint URLs, same syntax as query). Admission is controlled by a
global memory pool (--memory-pool) carved into per-query ledgers
(--query-budget); when all ledgers are out, up to --queue callers wait
briefly and the rest are shed with 503 + Retry-After. Each client
(X-Client-Id header, or peer IP) may have at most --client-max-inflight
queries running (429 beyond it). Analysis facts and whole-query results
are cached across clients with --cache-ttl / --cache-capacity bounds; a
repeated hot query is answered with zero endpoint requests. Degraded
(partial or truncated) results are never cached. GET /stats reports
per-client counters, cache hit rates, pool and queue state, and a
lifecycle section (cancellations by reason, watchdog reaps, panics
contained, drain outcomes); POST /cache/invalidate drops both cache
tiers.

Every admitted query carries a cancel token: GET /queries lists the
in-flight queries (id, client, phase, elapsed, accounted bytes) and
POST /queries/<ID>/cancel trips one, returning 499 to its caller and
releasing its memory ledger. A client that disconnects mid-query is
detected on the socket and cancelled the same way. A watchdog reaps
queries wedged past their deadline plus --watchdog-grace SECS
(default 2). On shutdown the server drains: it stops accepting,
waits up to --drain-timeout SECS (default 5) for in-flight queries,
then force-cancels stragglers.";

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    Usage(String),
    Io(std::io::Error),
    Parse(String),
    Engine(lusail_core::EngineError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io(e) => write!(f, "I/O: {e}"),
            CliError::Parse(m) => write!(f, "parse: {m}"),
            CliError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Query {
        data: Vec<PathBuf>,
        endpoints: Vec<String>,
        query_file: Option<PathBuf>,
        query_text: Option<String>,
        engine: EngineKind,
        profile: ProfileKind,
        timeout: Option<u64>,
        /// HTTP retry attempts beyond the first (`--retries`).
        retries: Option<u32>,
        /// First-retry backoff in milliseconds (`--backoff`).
        backoff: Option<u64>,
        /// Hedge delay in milliseconds for replica groups (`--hedge-after`).
        hedge_after: Option<u64>,
        /// Per-query memory budget in bytes (`--memory-budget`).
        memory_budget: Option<usize>,
        /// Row cap per subquery response (`--max-result-rows`).
        max_result_rows: Option<usize>,
        format: OutputFormat,
        explain: bool,
        partial: bool,
        stats: bool,
    },
    Serve {
        data: Vec<PathBuf>,
        addr: String,
        workers: usize,
        /// Row ceiling per response streamed by the server.
        max_result_rows: Option<usize>,
        /// `--federate`: run the federator as a service instead of a
        /// plain single-store endpoint.
        federate: Option<FederateOpts>,
    },
    Generate {
        benchmark: String,
        out: PathBuf,
        scale: f64,
        endpoints: usize,
        seed: u64,
    },
    Info {
        data: Vec<PathBuf>,
    },
    Search {
        data: Vec<PathBuf>,
        keywords: Vec<String>,
        top: usize,
    },
    Snapshot {
        data: PathBuf,
        out: PathBuf,
    },
}

/// Options for `serve --federate` (defaults come from
/// [`lusail_server::federate::FederateConfig`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FederateOpts {
    /// Remote `--endpoint` specs (bare URLs or `NAME=URL,URL` groups).
    pub endpoints: Vec<String>,
    /// Network profile for the `--data` simulated endpoints.
    pub profile: ProfileKind,
    /// Per-query deadline in seconds (`--query-timeout`).
    pub query_timeout: Option<u64>,
    /// HTTP retry attempts beyond the first (`--retries`).
    pub retries: Option<u32>,
    /// First-retry backoff in milliseconds (`--backoff`).
    pub backoff: Option<u64>,
    /// Hedge delay in milliseconds for replica groups (`--hedge-after`).
    pub hedge_after: Option<u64>,
    /// Global memory pool in bytes (`--memory-pool`).
    pub memory_pool: Option<usize>,
    /// Per-query ledger in bytes (`--query-budget`).
    pub query_budget: Option<usize>,
    /// Admission-queue bound (`--queue`).
    pub queue: Option<usize>,
    /// Per-client in-flight bound (`--client-max-inflight`).
    pub client_max_inflight: Option<usize>,
    /// Cache TTL in seconds for both tiers (`--cache-ttl`).
    pub cache_ttl: Option<u64>,
    /// Result-cache entry cap (`--cache-capacity`).
    pub cache_capacity: Option<usize>,
    /// Serve partial results with warnings when endpoints fail.
    pub partial: bool,
    /// Shutdown drain window in seconds (`--drain-timeout`): in-flight
    /// queries get this long to finish before being force-cancelled.
    pub drain_timeout: Option<u64>,
    /// Watchdog slack past the query deadline in seconds
    /// (`--watchdog-grace`) before a wedged query is reaped.
    pub watchdog_grace: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    Lusail,
    FedX,
    Splendid,
    HiBiscus,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileKind {
    #[default]
    Instant,
    Local,
    Geo,
}

impl ProfileKind {
    fn network(self) -> NetworkProfile {
        match self {
            ProfileKind::Instant => NetworkProfile::instant(),
            ProfileKind::Local => NetworkProfile::local_cluster(),
            ProfileKind::Geo => NetworkProfile::geo_distributed(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    Table,
    Csv,
}

/// Parse argv (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let usage = |m: &str| CliError::Usage(m.to_string());
    let mut it = args.iter();
    let sub = it.next().ok_or_else(|| usage("missing subcommand"))?;

    // Collect flag → values pairs.
    let rest: Vec<&String> = it.collect();
    let mut flags: Vec<(&str, Option<&str>)> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        if !flag.starts_with("--") {
            return Err(usage(&format!("unexpected argument {flag:?}")));
        }
        let value = if matches!(flag, "--explain" | "--partial" | "--stats" | "--federate") {
            None
        } else {
            let v = rest
                .get(i + 1)
                .ok_or_else(|| usage(&format!("{flag} needs a value")))?;
            i += 1;
            Some(v.as_str())
        };
        flags.push((flag, value));
        i += 1;
    }
    // Reject typos outright: a misspelled `--port` must not silently fall
    // back to a default (serve would bind an ephemeral port the user never
    // asked for).
    let known: &[&str] = match sub.as_str() {
        "query" => &[
            "--data",
            "--endpoint",
            "--query",
            "--query-text",
            "--engine",
            "--profile",
            "--timeout",
            "--retries",
            "--backoff",
            "--hedge-after",
            "--memory-budget",
            "--max-result-rows",
            "--format",
            "--explain",
            "--partial",
            "--stats",
        ],
        "serve" => &[
            "--data",
            "--addr",
            "--port",
            "--workers",
            "--max-result-rows",
            "--federate",
            "--endpoint",
            "--profile",
            "--query-timeout",
            "--retries",
            "--backoff",
            "--hedge-after",
            "--memory-pool",
            "--query-budget",
            "--queue",
            "--client-max-inflight",
            "--cache-ttl",
            "--cache-capacity",
            "--partial",
            "--drain-timeout",
            "--watchdog-grace",
        ],
        "generate" => &["--benchmark", "--out", "--scale", "--endpoints", "--seed"],
        "info" => &["--data"],
        "snapshot" => &["--data", "--out"],
        "search" => &["--data", "--keywords", "--top"],
        _ => &[], // unknown subcommand: fall through to its own error below
    };
    if !known.is_empty() {
        if let Some((bad, _)) = flags.iter().find(|(f, _)| !known.contains(f)) {
            return Err(usage(&format!("unknown flag {bad:?} for {sub}")));
        }
    }

    let get = |name: &str| flags.iter().find(|(f, _)| *f == name).and_then(|(_, v)| *v);
    let get_all = |name: &str| -> Vec<&str> {
        flags
            .iter()
            .filter(|(f, _)| *f == name)
            .filter_map(|(_, v)| *v)
            .collect()
    };
    let has = |name: &str| flags.iter().any(|(f, _)| *f == name);

    match sub.as_str() {
        "query" => {
            let data: Vec<PathBuf> = get_all("--data").into_iter().map(PathBuf::from).collect();
            let endpoints: Vec<String> = get_all("--endpoint")
                .into_iter()
                .map(str::to_string)
                .collect();
            if data.is_empty() && endpoints.is_empty() {
                return Err(usage(
                    "query needs at least one --data FILE or --endpoint URL",
                ));
            }
            let query_file = get("--query").map(PathBuf::from);
            let query_text = get("--query-text").map(str::to_string);
            if query_file.is_none() && query_text.is_none() {
                return Err(usage("query needs --query FILE or --query-text SPARQL"));
            }
            let engine = match get("--engine").unwrap_or("lusail") {
                "lusail" => EngineKind::Lusail,
                "fedx" => EngineKind::FedX,
                "splendid" => EngineKind::Splendid,
                "hibiscus" => EngineKind::HiBiscus,
                other => return Err(usage(&format!("unknown engine {other:?}"))),
            };
            let profile = match get("--profile").unwrap_or("instant") {
                "instant" => ProfileKind::Instant,
                "local" => ProfileKind::Local,
                "geo" => ProfileKind::Geo,
                other => return Err(usage(&format!("unknown profile {other:?}"))),
            };
            let timeout = match get("--timeout") {
                None => None,
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| usage(&format!("bad --timeout {v:?}")))?,
                ),
            };
            let retries: Option<u32> = match get("--retries") {
                None => None,
                Some(v) => {
                    let n = v
                        .parse()
                        .map_err(|_| usage(&format!("bad --retries {v:?}")))?;
                    if n > 100 {
                        return Err(usage(&format!("--retries {n} is out of range (max 100)")));
                    }
                    Some(n)
                }
            };
            let backoff: Option<u64> = match get("--backoff") {
                None => None,
                Some(v) => {
                    let ms = v
                        .parse()
                        .map_err(|_| usage(&format!("bad --backoff {v:?}")))?;
                    if ms > 60_000 {
                        return Err(usage(&format!(
                            "--backoff {ms} is out of range (max 60000 ms)"
                        )));
                    }
                    Some(ms)
                }
            };
            let hedge_after: Option<u64> = match get("--hedge-after") {
                None => None,
                Some(v) => {
                    let ms = v
                        .parse()
                        .map_err(|_| usage(&format!("bad --hedge-after {v:?}")))?;
                    if ms > 60_000 {
                        return Err(usage(&format!(
                            "--hedge-after {ms} is out of range (max 60000 ms)"
                        )));
                    }
                    Some(ms)
                }
            };
            let memory_budget: Option<usize> = match get("--memory-budget") {
                None => None,
                Some(v) => {
                    Some(parse_bytes(v).map_err(|m| usage(&format!("bad --memory-budget: {m}")))?)
                }
            };
            let max_result_rows: Option<usize> = match get("--max-result-rows") {
                None => None,
                Some(v) => {
                    let n: usize = v
                        .parse()
                        .map_err(|_| usage(&format!("bad --max-result-rows {v:?}")))?;
                    if n == 0 {
                        return Err(usage("--max-result-rows must be at least 1"));
                    }
                    Some(n)
                }
            };
            // Group specs are validated at parse time so a malformed
            // NAME=URL,URL list fails before any endpoint is dialled.
            for spec in &endpoints {
                parse_endpoint_spec(spec).map_err(|m| usage(&m))?;
            }
            let format = match get("--format").unwrap_or("table") {
                "table" => OutputFormat::Table,
                "csv" => OutputFormat::Csv,
                other => return Err(usage(&format!("unknown format {other:?}"))),
            };
            if has("--partial") && engine != EngineKind::Lusail {
                return Err(usage(
                    "--partial is only supported by the lusail engine (the baselines \
                     have no partial-results mode)",
                ));
            }
            if memory_budget.is_some() && engine != EngineKind::Lusail {
                return Err(usage(
                    "--memory-budget is only supported by the lusail engine (the \
                     baselines have no memory accounting)",
                ));
            }
            Ok(Command::Query {
                data,
                endpoints,
                query_file,
                query_text,
                engine,
                profile,
                timeout,
                retries,
                backoff,
                hedge_after,
                memory_budget,
                max_result_rows,
                format,
                explain: has("--explain"),
                partial: has("--partial"),
                stats: has("--stats"),
            })
        }
        "serve" => {
            let data: Vec<PathBuf> = get_all("--data").into_iter().map(PathBuf::from).collect();
            let federate = has("--federate");
            if !federate {
                // Federation knobs without --federate would silently do
                // nothing; refuse them instead.
                const FEDERATE_ONLY: &[&str] = &[
                    "--endpoint",
                    "--profile",
                    "--query-timeout",
                    "--retries",
                    "--backoff",
                    "--hedge-after",
                    "--memory-pool",
                    "--query-budget",
                    "--queue",
                    "--client-max-inflight",
                    "--cache-ttl",
                    "--cache-capacity",
                    "--partial",
                    "--drain-timeout",
                    "--watchdog-grace",
                ];
                if let Some(flag) = FEDERATE_ONLY.iter().find(|f| has(f)) {
                    return Err(usage(&format!("{flag} requires serve --federate")));
                }
                if data.is_empty() {
                    return Err(usage("serve needs at least one --data FILE"));
                }
            }
            if has("--addr") && has("--port") {
                return Err(usage("serve takes --addr or --port, not both"));
            }
            let addr = match (get("--addr"), get("--port")) {
                (Some(a), _) => a.to_string(),
                (None, Some(p)) => {
                    let port: u16 = p.parse().map_err(|_| usage(&format!("bad --port {p:?}")))?;
                    format!("127.0.0.1:{port}")
                }
                (None, None) => "127.0.0.1:0".to_string(),
            };
            let workers: usize = match get("--workers") {
                None => ServerConfig::default().workers,
                Some(v) => v
                    .parse()
                    .map_err(|_| usage(&format!("bad --workers {v:?}")))?,
            };
            let max_result_rows: Option<usize> = match get("--max-result-rows") {
                None => None,
                Some(v) => {
                    let n: usize = v
                        .parse()
                        .map_err(|_| usage(&format!("bad --max-result-rows {v:?}")))?;
                    if n == 0 {
                        return Err(usage("--max-result-rows must be at least 1"));
                    }
                    Some(n)
                }
            };
            let federate = if federate {
                let endpoints: Vec<String> = get_all("--endpoint")
                    .into_iter()
                    .map(str::to_string)
                    .collect();
                if data.is_empty() && endpoints.is_empty() {
                    return Err(usage(
                        "serve --federate needs at least one --data FILE or --endpoint URL",
                    ));
                }
                for spec in &endpoints {
                    parse_endpoint_spec(spec).map_err(|m| usage(&m))?;
                }
                let profile = match get("--profile").unwrap_or("instant") {
                    "instant" => ProfileKind::Instant,
                    "local" => ProfileKind::Local,
                    "geo" => ProfileKind::Geo,
                    other => return Err(usage(&format!("unknown profile {other:?}"))),
                };
                let parse_u64 = |flag: &str| -> Result<Option<u64>, CliError> {
                    match get(flag) {
                        None => Ok(None),
                        Some(v) => Ok(Some(
                            v.parse().map_err(|_| usage(&format!("bad {flag} {v:?}")))?,
                        )),
                    }
                };
                let parse_usize = |flag: &str| -> Result<Option<usize>, CliError> {
                    match get(flag) {
                        None => Ok(None),
                        Some(v) => Ok(Some(
                            v.parse().map_err(|_| usage(&format!("bad {flag} {v:?}")))?,
                        )),
                    }
                };
                let parse_size = |flag: &str| -> Result<Option<usize>, CliError> {
                    match get(flag) {
                        None => Ok(None),
                        Some(v) => Ok(Some(
                            parse_bytes(v).map_err(|m| usage(&format!("bad {flag}: {m}")))?,
                        )),
                    }
                };
                let retries: Option<u32> = match get("--retries") {
                    None => None,
                    Some(v) => Some(
                        v.parse()
                            .map_err(|_| usage(&format!("bad --retries {v:?}")))?,
                    ),
                };
                let client_max_inflight = parse_usize("--client-max-inflight")?;
                if client_max_inflight == Some(0) {
                    return Err(usage("--client-max-inflight must be at least 1"));
                }
                let query_budget = parse_size("--query-budget")?;
                let memory_pool = parse_size("--memory-pool")?;
                if let (Some(pool), Some(ledger)) = (memory_pool, query_budget) {
                    if ledger > pool {
                        return Err(usage(&format!(
                            "--query-budget {ledger} exceeds --memory-pool {pool}"
                        )));
                    }
                }
                Some(FederateOpts {
                    endpoints,
                    profile,
                    query_timeout: parse_u64("--query-timeout")?,
                    retries,
                    backoff: parse_u64("--backoff")?,
                    hedge_after: parse_u64("--hedge-after")?,
                    memory_pool,
                    query_budget,
                    queue: parse_usize("--queue")?,
                    client_max_inflight,
                    cache_ttl: parse_u64("--cache-ttl")?,
                    cache_capacity: parse_usize("--cache-capacity")?,
                    partial: has("--partial"),
                    drain_timeout: parse_u64("--drain-timeout")?,
                    watchdog_grace: parse_u64("--watchdog-grace")?,
                })
            } else {
                None
            };
            Ok(Command::Serve {
                data,
                addr,
                workers,
                max_result_rows,
                federate,
            })
        }
        "generate" => {
            let benchmark = get("--benchmark")
                .ok_or_else(|| usage("generate needs --benchmark"))?
                .to_string();
            if !["lubm", "qfed", "largerdf", "bio2rdf"].contains(&benchmark.as_str()) {
                return Err(usage(&format!("unknown benchmark {benchmark:?}")));
            }
            let out = PathBuf::from(get("--out").ok_or_else(|| usage("generate needs --out DIR"))?);
            let scale: f64 = match get("--scale") {
                None => 1.0,
                Some(v) => v
                    .parse()
                    .map_err(|_| usage(&format!("bad --scale {v:?}")))?,
            };
            let endpoints: usize = match get("--endpoints") {
                None => 4,
                Some(v) => v
                    .parse()
                    .map_err(|_| usage(&format!("bad --endpoints {v:?}")))?,
            };
            let seed: u64 = match get("--seed") {
                None => 42,
                Some(v) => v.parse().map_err(|_| usage(&format!("bad --seed {v:?}")))?,
            };
            Ok(Command::Generate {
                benchmark,
                out,
                scale,
                endpoints,
                seed,
            })
        }
        "info" => {
            let data: Vec<PathBuf> = get_all("--data").into_iter().map(PathBuf::from).collect();
            if data.is_empty() {
                return Err(usage("info needs at least one --data FILE"));
            }
            Ok(Command::Info { data })
        }
        "snapshot" => {
            let data = get("--data")
                .map(PathBuf::from)
                .ok_or_else(|| usage("snapshot needs --data FILE"))?;
            let out = get("--out")
                .map(PathBuf::from)
                .ok_or_else(|| usage("snapshot needs --out FILE.snap"))?;
            Ok(Command::Snapshot { data, out })
        }
        "search" => {
            let data: Vec<PathBuf> = get_all("--data").into_iter().map(PathBuf::from).collect();
            if data.is_empty() {
                return Err(usage("search needs at least one --data FILE"));
            }
            let keywords: Vec<String> = get("--keywords")
                .ok_or_else(|| usage("search needs --keywords"))?
                .split_whitespace()
                .map(str::to_string)
                .collect();
            let top: usize = match get("--top") {
                None => 10,
                Some(v) => v.parse().map_err(|_| usage(&format!("bad --top {v:?}")))?,
            };
            Ok(Command::Search {
                data,
                keywords,
                top,
            })
        }
        other => Err(usage(&format!("unknown subcommand {other:?}"))),
    }
}

/// Parse a byte-size argument: a plain count, or a count with a decimal
/// (`KB`/`MB`/`GB`) or binary (`KiB`/`MiB`/`GiB`) suffix, case-insensitive
/// — `8MiB`, `512kb`, `1073741824`.
fn parse_bytes(v: &str) -> Result<usize, String> {
    let t = v.trim();
    let split = t.find(|c: char| !c.is_ascii_digit()).unwrap_or(t.len());
    let (digits, suffix) = t.split_at(split);
    let mult: usize = match suffix.trim().to_ascii_lowercase().as_str() {
        "" | "b" => 1,
        "kb" => 1000,
        "mb" => 1_000_000,
        "gb" => 1_000_000_000,
        "kib" => 1 << 10,
        "mib" => 1 << 20,
        "gib" => 1 << 30,
        other => return Err(format!("unknown byte suffix {other:?} in {v:?}")),
    };
    if digits.is_empty() {
        return Err(format!("{v:?} has no leading number"));
    }
    let n: usize = digits
        .parse()
        .map_err(|_| format!("bad byte count {v:?}"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("{v:?} overflows a byte count"))
}

/// Load a data file as a store (by extension: `.ttl`/`.turtle` Turtle,
/// `.snap` binary snapshot, anything else N-Triples).
pub fn load_store(path: &Path) -> Result<Store, CliError> {
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    if ext == "snap" {
        return lusail_store::snapshot::load_from_file(path)
            .map_err(|e| CliError::Parse(format!("{path:?}: {e}")));
    }
    Ok(Store::from_graph(&load_graph(path)?))
}

/// Load a text data file as a graph (by extension).
pub fn load_graph(path: &Path) -> Result<Graph, CliError> {
    let text = std::fs::read_to_string(path)?;
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    match ext {
        "ttl" | "turtle" => {
            lusail_rdf::turtle::parse(&text).map_err(|e| CliError::Parse(format!("{path:?}: {e}")))
        }
        _ => lusail_rdf::ntriples::parse(&text)
            .map_err(|e| CliError::Parse(format!("{path:?}: {e}"))),
    }
}

/// One parsed `--endpoint` value: a bare URL, or a `NAME=URL,URL,...`
/// replica group.
#[derive(Debug, Clone, PartialEq, Eq)]
enum EndpointSpec {
    Single(String),
    Group { name: String, urls: Vec<String> },
}

/// Classify an `--endpoint` value. A spec is a group when it has an `=`
/// whose left side looks like a plain name (no `/` or `:`, so URLs with
/// `?query=` parts are never mis-split); the right side is a comma list
/// of member URLs.
fn parse_endpoint_spec(spec: &str) -> Result<EndpointSpec, String> {
    let Some((name, rest)) = spec.split_once('=') else {
        return Ok(EndpointSpec::Single(spec.to_string()));
    };
    if name.contains('/') || name.contains(':') {
        // The `=` belongs to the URL itself.
        return Ok(EndpointSpec::Single(spec.to_string()));
    }
    if name.is_empty() {
        return Err(format!("--endpoint group {spec:?} has an empty name"));
    }
    let urls: Vec<String> = rest.split(',').map(str::trim).map(str::to_string).collect();
    if urls.iter().any(String::is_empty) {
        return Err(format!(
            "--endpoint group {name:?} has an empty member URL in {rest:?}"
        ));
    }
    Ok(EndpointSpec::Group {
        name: name.to_string(),
        urls,
    })
}

/// Assemble a federation from local data files (simulated endpoints) and
/// remote URL specs (HTTP endpoints, or replica groups of them), in that
/// order. `http` tunes every HTTP member; `hedge_after` enables hedging
/// inside replica groups.
fn build_federation(
    data: &[PathBuf],
    urls: &[String],
    profile: ProfileKind,
    http: HttpConfig,
    hedge_after: Option<Duration>,
) -> Result<Federation, CliError> {
    let mut endpoints: Vec<Arc<dyn SparqlEndpoint>> = Vec::new();
    for path in data {
        let store = load_store(path)?;
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("endpoint")
            .to_string();
        endpoints.push(Arc::new(SimulatedEndpoint::new(
            name,
            store,
            profile.network(),
        )));
    }
    let http_member = |name: &str, url: &str| -> Result<Arc<dyn SparqlEndpoint>, CliError> {
        let ep = HttpEndpoint::new(name, url)
            .map_err(|e| CliError::Usage(format!("--endpoint {e}")))?
            .with_config(http);
        Ok(Arc::new(ep))
    };
    for spec in urls {
        match parse_endpoint_spec(spec).map_err(CliError::Usage)? {
            EndpointSpec::Single(url) => endpoints.push(http_member(&url, &url)?),
            EndpointSpec::Group { name, urls } => {
                let members = urls
                    .iter()
                    .map(|url| http_member(url, url))
                    .collect::<Result<Vec<_>, _>>()?;
                endpoints.push(Arc::new(ReplicaGroup::new(
                    name,
                    members,
                    ReplicaConfig {
                        hedge_after,
                        ..ReplicaConfig::default()
                    },
                )));
            }
        }
    }
    Ok(Federation::new(endpoints))
}

/// Merge `data` files into one store and start a SPARQL server on `addr`.
/// Exposed separately from [`run_command`] (which blocks forever) so tests
/// and embedders get the handle back.
pub fn start_server(
    data: &[PathBuf],
    addr: &str,
    workers: usize,
    max_result_rows: Option<usize>,
) -> Result<(lusail_server::ServerHandle, usize), CliError> {
    let mut merged = Graph::new();
    for path in data {
        // Snapshots load as stores; everything else as graphs.
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        if ext == "snap" {
            let store = load_store(path)?;
            for (s, p, o) in store.iter_ids() {
                merged.add(
                    store.decode(s).clone(),
                    store.decode(p).clone(),
                    store.decode(o).clone(),
                );
            }
        } else {
            for t in load_graph(path)?.iter() {
                merged.add(t.subject.clone(), t.predicate.clone(), t.object.clone());
            }
        }
    }
    let triples = merged.len();
    let store = Store::from_graph(&merged);
    let config = ServerConfig {
        workers,
        max_result_rows,
        ..Default::default()
    };
    let server = lusail_server::SparqlServer::bind(addr, store, config).map_err(CliError::Io)?;
    Ok((server.spawn(), triples))
}

/// Start `serve --federate`: the LADE/SAPE engine over the configured
/// federation, mounted behind the HTTP server with admission control,
/// per-client quotas, and the shared cache tier. Returns the running
/// handle and the number of federated endpoints.
pub fn start_federated_server(
    data: &[PathBuf],
    addr: &str,
    workers: usize,
    max_result_rows: Option<usize>,
    opts: &FederateOpts,
) -> Result<(lusail_server::ServerHandle, usize), CliError> {
    let mut http = HttpConfig::default();
    if let Some(n) = opts.retries {
        http.retries = n;
    }
    if let Some(ms) = opts.backoff {
        http.backoff = Duration::from_millis(ms);
    }
    // The transport-level row cap guards the federator against endpoint
    // result bombs, independent of the per-query ledger.
    http.max_result_rows = max_result_rows;
    let federation = build_federation(
        data,
        &opts.endpoints,
        opts.profile,
        http,
        opts.hedge_after.map(Duration::from_millis),
    )?;
    let endpoints = federation.len();

    let defaults = FederateConfig::default();
    let service_config = FederateConfig {
        pool_bytes: opts.memory_pool.unwrap_or(defaults.pool_bytes),
        query_budget_bytes: opts.query_budget.unwrap_or(defaults.query_budget_bytes),
        max_waiting: opts.queue.unwrap_or(defaults.max_waiting),
        client_max_inflight: opts
            .client_max_inflight
            .unwrap_or(defaults.client_max_inflight),
        query_timeout: match opts.query_timeout {
            Some(secs) => Some(Duration::from_secs(secs)),
            None => defaults.query_timeout,
        },
        max_result_rows,
        partial: opts.partial,
        result_cache_capacity: opts.cache_capacity.or(defaults.result_cache_capacity),
        cache_ttl: match opts.cache_ttl {
            Some(secs) => Some(Duration::from_secs(secs)),
            None => defaults.cache_ttl,
        },
        watchdog_grace: opts
            .watchdog_grace
            .map(Duration::from_secs)
            .unwrap_or(defaults.watchdog_grace),
        ..defaults
    };
    // The long-lived analysis cache gets the same bounds as the result
    // cache, so stale endpoint facts age out of both tiers together.
    let engine = LusailEngine::with_cache(
        federation,
        LusailConfig {
            result_policy: if opts.partial {
                ResultPolicy::Partial
            } else {
                ResultPolicy::FailFast
            },
            max_result_rows,
            ..Default::default()
        },
        lusail_core::QueryCache::with_limits(service_config.cache_limits()),
    );
    let service = FederationService::new(engine, service_config);
    let server_config = ServerConfig {
        workers,
        max_result_rows,
        name: "lusail-federate".to_string(),
        drain_timeout: opts
            .drain_timeout
            .map(Duration::from_secs)
            .unwrap_or(ServerConfig::default().drain_timeout),
        ..Default::default()
    };
    let server = lusail_server::SparqlServer::with_backend(addr, Arc::new(service), server_config)
        .map_err(CliError::Io)?;
    Ok((server.spawn(), endpoints))
}

/// Run a parsed command, writing human output to `out`.
pub fn run_command(cmd: Command, out: &mut dyn Write) -> Result<(), CliError> {
    match cmd {
        Command::Serve {
            data,
            addr,
            workers,
            max_result_rows,
            federate,
        } => {
            match federate {
                None => {
                    let (handle, triples) = start_server(&data, &addr, workers, max_result_rows)?;
                    writeln!(out, "serving {} triples at {}", triples, handle.url())?;
                }
                Some(opts) => {
                    let (handle, endpoints) =
                        start_federated_server(&data, &addr, workers, max_result_rows, &opts)?;
                    writeln!(
                        out,
                        "federating {} endpoints at {}",
                        endpoints,
                        handle.url()
                    )?;
                }
            }
            out.flush()?;
            // Serve until the process is killed.
            loop {
                std::thread::park();
            }
        }
        Command::Query {
            data,
            endpoints,
            query_file,
            query_text,
            engine,
            profile,
            timeout,
            retries,
            backoff,
            hedge_after,
            memory_budget,
            max_result_rows,
            format,
            explain,
            partial,
            stats,
        } => {
            let mut http = HttpConfig::default();
            if let Some(n) = retries {
                http.retries = n;
            }
            if let Some(ms) = backoff {
                http.backoff = Duration::from_millis(ms);
            }
            // The transport-level cap guards every engine: a result bomb
            // is cut off while the response streams in.
            http.max_result_rows = max_result_rows;
            let federation = build_federation(
                &data,
                &endpoints,
                profile,
                http,
                hedge_after.map(Duration::from_millis),
            )?;
            let text = match (&query_file, &query_text) {
                (Some(path), _) => std::fs::read_to_string(path)?,
                (None, Some(text)) => text.clone(),
                (None, None) => unreachable!("validated in parse_args"),
            };
            let query =
                lusail_sparql::parse_query(&text).map_err(|e| CliError::Parse(e.to_string()))?;
            let timeout = timeout.map(Duration::from_secs);

            if engine == EngineKind::Lusail {
                let lusail = LusailEngine::new(
                    federation.clone(),
                    LusailConfig {
                        timeout,
                        result_policy: if partial {
                            ResultPolicy::Partial
                        } else {
                            ResultPolicy::FailFast
                        },
                        memory_budget,
                        max_result_rows,
                        ..Default::default()
                    },
                );
                // One-shot runs carry a cancel token too: every deadline
                // check doubles as a cancellation point, so a tripped
                // token (or expired budget) surfaces in --stats as a
                // lifecycle outcome instead of a bare error.
                let ctx = RunContext::new(lusail.config()).with_cancel(CancelToken::new());
                let started = std::time::Instant::now();
                let run = lusail.execute_profiled_with(&query, &ctx);
                if stats {
                    if let Err(e) = &run {
                        print_lifecycle_stats(&ctx, started.elapsed(), Some(e), out)?;
                    }
                }
                let (rel, profile) = run.map_err(CliError::Engine)?;
                if explain {
                    writeln!(out, "# engine        : Lusail")?;
                    writeln!(out, "# gjvs          : {:?}", profile.gjvs)?;
                    writeln!(out, "# subqueries    : {}", profile.subqueries)?;
                    writeln!(out, "# delayed       : {}", profile.delayed)?;
                    writeln!(out, "# check queries : {}", profile.check_queries)?;
                    writeln!(
                        out,
                        "# phases        : source {:?}, analysis {:?}, execution {:?}",
                        profile.source_selection, profile.analysis, profile.execution
                    )?;
                    writeln!(
                        out,
                        "# traffic       : {} requests, {} bytes received",
                        federation.total_traffic().requests,
                        federation.total_traffic().bytes_received
                    )?;
                }
                // Degraded results must be visibly degraded, whether or
                // not --explain is on.
                for w in &profile.warnings {
                    writeln!(out, "# warning       : {w}")?;
                }
                print_relation(&rel, format, out)?;
                if stats {
                    print_endpoint_stats(&federation, out)?;
                    print_codec_stats(&federation, out)?;
                    print_integrity_stats(lusail.integrity(), out)?;
                    print_memory_stats(&profile.memory, out)?;
                    print_lifecycle_stats(&ctx, started.elapsed(), None, out)?;
                }
                return Ok(());
            }

            let engine: Box<dyn FederatedEngine> = match engine {
                EngineKind::Lusail => unreachable!("handled above"),
                EngineKind::FedX => Box::new(FedX::new(
                    federation.clone(),
                    FedXConfig {
                        timeout,
                        ..Default::default()
                    },
                )),
                EngineKind::Splendid => {
                    let mut s = Splendid::new(federation.clone());
                    s.timeout = timeout;
                    Box::new(s)
                }
                EngineKind::HiBiscus => Box::new(HiBiscus::new(
                    federation.clone(),
                    FedXConfig {
                        timeout,
                        ..Default::default()
                    },
                )),
            };
            let rel = engine.execute(&query).map_err(CliError::Engine)?;
            print_relation(&rel, format, out)?;
            if stats {
                print_endpoint_stats(&federation, out)?;
                print_codec_stats(&federation, out)?;
            }
            Ok(())
        }
        Command::Generate {
            benchmark,
            out: dir,
            scale,
            endpoints,
            seed,
        } => {
            std::fs::create_dir_all(&dir)?;
            let graphs: Vec<(String, Graph)> = match benchmark.as_str() {
                "lubm" => {
                    let cfg = lusail_workloads::lubm::LubmConfig {
                        universities: endpoints,
                        seed,
                        ..Default::default()
                    };
                    lusail_workloads::lubm::generate_all(&cfg)
                }
                "qfed" => {
                    let cfg = lusail_workloads::qfed::QfedConfig {
                        drugs: (400.0 * scale) as usize,
                        diseases: (120.0 * scale) as usize,
                        side_effects: (200.0 * scale) as usize,
                        labels: (150.0 * scale) as usize,
                        seed,
                    };
                    lusail_workloads::qfed::generate_all(&cfg)
                }
                "largerdf" => {
                    let cfg = lusail_workloads::largerdf::LargeRdfConfig { scale, seed };
                    lusail_workloads::largerdf::generate_all(&cfg)
                }
                "bio2rdf" => {
                    let cfg = lusail_workloads::bio2rdf::Bio2RdfConfig {
                        seed,
                        ..Default::default()
                    };
                    lusail_workloads::bio2rdf::generate_all(&cfg)
                }
                _ => unreachable!("validated in parse_args"),
            };
            for (name, graph) in &graphs {
                let path = dir.join(format!("{name}.nt"));
                std::fs::write(&path, lusail_rdf::ntriples::serialize(graph))?;
                writeln!(out, "wrote {} ({} triples)", path.display(), graph.len())?;
            }
            Ok(())
        }
        Command::Snapshot { data, out: target } => {
            let store = load_store(&data)?;
            lusail_store::snapshot::save_to_file(&store, &target)?;
            writeln!(
                out,
                "wrote {} ({} triples, {} bytes)",
                target.display(),
                store.len(),
                std::fs::metadata(&target)?.len()
            )?;
            Ok(())
        }
        Command::Search {
            data,
            keywords,
            top,
        } => {
            let federation = build_federation(
                &data,
                &[],
                ProfileKind::Instant,
                HttpConfig::default(),
                None,
            )?;
            let handler = lusail_federation::RequestHandler::per_core();
            let refs: Vec<&str> = keywords.iter().map(String::as_str).collect();
            let cfg = lusail_core::keyword::KeywordConfig {
                top_k: top,
                ..Default::default()
            };
            let hits = lusail_core::keyword::keyword_search(&federation, &handler, &refs, &cfg)
                .map_err(CliError::Engine)?;
            if hits.is_empty() {
                writeln!(out, "no matches for {keywords:?}")?;
                return Ok(());
            }
            for (rank, hit) in hits.iter().enumerate() {
                writeln!(
                    out,
                    "{}. {}  (endpoint {}, {} keyword(s), {} matching triple(s))",
                    rank + 1,
                    hit.entity,
                    federation.endpoint(hit.endpoint).name(),
                    hit.keywords_matched,
                    hit.match_count
                )?;
                for (p, o) in hit.description.iter().take(5) {
                    let mut text = o.to_string();
                    if text.chars().count() > 120 {
                        text = format!("{}…\"", text.chars().take(119).collect::<String>());
                    }
                    writeln!(out, "     {p} {text}")?;
                }
            }
            Ok(())
        }
        Command::Info { data } => {
            for path in &data {
                let store = load_store(path)?;
                let stats = StoreStats::collect(&store);
                writeln!(out, "{}:", path.display())?;
                writeln!(out, "  triples    : {}", stats.triples)?;
                writeln!(out, "  predicates : {}", stats.predicates.len())?;
                let mut preds: Vec<_> = stats.predicates.iter().collect();
                preds.sort_by_key(|(_, p)| std::cmp::Reverse(p.count));
                for (iri, p) in preds.iter().take(8) {
                    writeln!(
                        out,
                        "    {:<60} {:>8} triples, {:>6} subjects, {:>6} objects",
                        iri, p.count, p.distinct_subjects, p.distinct_objects
                    )?;
                }
            }
            Ok(())
        }
    }
}

/// The `--stats` table: one row per endpoint, merging traffic counters
/// with the transport's health registry (breaker state, failure counts,
/// latency EWMA) when the endpoint tracks one. Replica groups get one
/// indented sub-row per member showing which mirror carried the group:
/// dispatches, failovers taken, hedges launched, hedges won.
fn print_endpoint_stats(federation: &Federation, out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(out, "# endpoint health:")?;
    writeln!(
        out,
        "#   {:<16} {:>8} {:>8} {:>8} {:>8} {:>9}  {}",
        "endpoint", "requests", "failures", "retries", "rejected", "breaker", "latency-ewma"
    )?;
    for (id, ep) in federation.iter() {
        let traffic = ep.traffic();
        match ep.health() {
            Some(h) => writeln!(
                out,
                "#   {:<16} {:>8} {:>8} {:>8} {:>8} {:>9}  {:?}",
                format!("{} (#{id})", ep.name()),
                traffic.requests,
                h.failures,
                h.retries,
                h.open_rejections,
                h.breaker.to_string(),
                h.latency_ewma
            )?,
            None => writeln!(
                out,
                "#   {:<16} {:>8} {:>8} {:>8} {:>8} {:>9}  -",
                format!("{} (#{id})", ep.name()),
                traffic.requests,
                "-",
                "-",
                "-",
                "-"
            )?,
        }
        if let Some(members) = ep.replica_members() {
            writeln!(
                out,
                "#     {:<16} {:>10} {:>9} {:>7} {:>10} {:>9}",
                "· member", "dispatches", "failovers", "hedges", "hedges-won", "breaker"
            )?;
            for m in &members {
                let breaker = m
                    .health
                    .map(|h| h.breaker.to_string())
                    .unwrap_or_else(|| "-".to_string());
                writeln!(
                    out,
                    "#     {:<16} {:>10} {:>9} {:>7} {:>10} {:>9}",
                    format!("· {}", m.name),
                    m.dispatches,
                    m.failovers,
                    m.hedges_launched,
                    m.hedges_won,
                    breaker
                )?;
            }
        }
    }
    Ok(())
}

/// The `--stats` integrity section: per-endpoint verification probes,
/// truncation detections, recovery paging counters, count divergences,
/// and quarantine standing. Prints only when some integrity activity
/// happened — a clean run over honest endpoints adds nothing.
fn print_integrity_stats(
    registry: &IntegrityRegistry,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let snapshot = registry.snapshot();
    if snapshot.is_empty() {
        return Ok(());
    }
    writeln!(out, "# integrity:")?;
    writeln!(
        out,
        "#   {:<16} {:>7} {:>11} {:>6} {:>10} {:>11} {:>12} {:>11}",
        "endpoint",
        "probes",
        "truncations",
        "pages",
        "recovered",
        "divergences",
        "quarantined",
        "learned-cap"
    )?;
    for (name, s) in snapshot {
        let quarantined = if s.quarantined {
            format!("yes ({} in)", s.quarantine_entries)
        } else if s.quarantine_entries > 0 {
            format!(
                "no ({} in/{} out)",
                s.quarantine_entries, s.quarantine_exits
            )
        } else {
            "no".to_string()
        };
        writeln!(
            out,
            "#   {:<16} {:>7} {:>11} {:>6} {:>10} {:>11} {:>12} {:>11}",
            name,
            s.verifications,
            s.truncations_detected,
            s.pages_fetched,
            s.rows_recovered,
            s.count_divergences,
            quarantined,
            s.learned_cap
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".to_string()),
        )?;
    }
    Ok(())
}

/// The `--stats` codec section: which result codec each wire-backed
/// endpoint settled on, bytes received per codec, dictionary sizes, and
/// how often a binary offer fell back to SPARQL JSON. Simulated
/// endpoints have no wire and are omitted; the section only prints when
/// at least one endpoint reports codec counters.
fn print_codec_stats(federation: &Federation, out: &mut dyn Write) -> Result<(), CliError> {
    let per_endpoint = federation.codec_by_endpoint();
    if per_endpoint.is_empty() {
        return Ok(());
    }
    writeln!(out, "# codec:")?;
    writeln!(
        out,
        "#   {:<16} {:>10} {:>9} {:>9} {:>12} {:>10} {:>10} {:>9}",
        "endpoint",
        "negotiated",
        "bin-resp",
        "json-resp",
        "bin-bytes",
        "json-bytes",
        "dict-terms",
        "fallbacks"
    )?;
    for (name, c) in &per_endpoint {
        writeln!(
            out,
            "#   {:<16} {:>10} {:>9} {:>9} {:>12} {:>10} {:>10} {:>9}",
            name,
            c.negotiated(),
            c.binary_responses,
            c.json_responses,
            c.binary_bytes_in,
            c.json_bytes_in,
            c.dict_terms,
            c.fallbacks
        )?;
    }
    if let Some(total) = federation.total_codec() {
        writeln!(
            out,
            "#   {:<16} {:>10} {:>9} {:>9} {:>12} {:>10} {:>10} {:>9}",
            "(total)",
            total.negotiated(),
            total.binary_responses,
            total.json_responses,
            total.binary_bytes_in,
            total.json_bytes_in,
            total.dict_terms,
            total.fallbacks
        )?;
    }
    Ok(())
}

/// The `--stats` memory section: peak accounted bytes overall and per
/// phase, plus spill activity from budget-pressured joins.
fn print_memory_stats(m: &lusail_core::MemoryStats, out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(out, "# memory:")?;
    match m.limit {
        Some(limit) => writeln!(out, "#   budget          : {limit} bytes")?,
        None => writeln!(out, "#   budget          : unbounded")?,
    }
    writeln!(out, "#   peak accounted  : {} bytes", m.peak_bytes)?;
    writeln!(out, "#   wave peak       : {} bytes", m.wave_peak_bytes)?;
    writeln!(out, "#   join peak       : {} bytes", m.join_peak_bytes)?;
    writeln!(
        out,
        "#   bound-join peak : {} bytes",
        m.bound_join_peak_bytes
    )?;
    writeln!(
        out,
        "#   spills          : {} runs, {} bytes",
        m.spill_count, m.spill_bytes
    )?;
    Ok(())
}

/// The `--stats` lifecycle section: how the run ended. One-shot queries
/// carry the same cancel token the federation service arms per admitted
/// query, so the outcome names who pulled the plug (deadline, a tripped
/// token) or confirms a clean completion. The service-side counterpart —
/// cancellations by reason, watchdog reaps, panics contained, drain
/// outcomes — lives in the federate server's GET /stats.
fn print_lifecycle_stats(
    ctx: &RunContext,
    elapsed: Duration,
    error: Option<&lusail_core::EngineError>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    writeln!(out, "# lifecycle:")?;
    writeln!(out, "#   elapsed         : {} ms", elapsed.as_millis())?;
    match ctx.cancel_reason() {
        Some(reason) => writeln!(out, "#   cancel token    : tripped ({})", reason.as_str())?,
        None => writeln!(out, "#   cancel token    : armed, never tripped")?,
    }
    let outcome = match error {
        None => "completed".to_string(),
        Some(lusail_core::EngineError::Timeout(budget)) => {
            format!("deadline exceeded ({budget:?} budget)")
        }
        Some(lusail_core::EngineError::Cancelled(reason)) => format!("cancelled: {reason}"),
        Some(e) => format!("failed: {e}"),
    };
    writeln!(out, "#   outcome         : {outcome}")?;
    Ok(())
}

fn print_relation(
    rel: &lusail_sparql::solution::Relation,
    format: OutputFormat,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let cell = |t: &Option<Term>| t.as_ref().map_or(String::new(), |t| t.to_string());
    match format {
        OutputFormat::Csv => {
            let header: Vec<String> = rel.vars().iter().map(|v| v.name().to_string()).collect();
            writeln!(out, "{}", header.join(","))?;
            for row in rel.rows() {
                let cells: Vec<String> = row.iter().map(|c| csv_escape(&cell(c))).collect();
                writeln!(out, "{}", cells.join(","))?;
            }
        }
        OutputFormat::Table => {
            for v in rel.vars() {
                write!(out, "{v}\t")?;
            }
            writeln!(out)?;
            for row in rel.rows() {
                for c in row {
                    write!(out, "{}\t", cell(c))?;
                }
                writeln!(out)?;
            }
            writeln!(out, "({} rows)", rel.len())?;
        }
    }
    Ok(())
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Entry point used by `main` and the tests.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let cmd = parse_args(args)?;
    run_command(cmd, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_query_command() {
        let cmd = parse_args(&s(&[
            "query",
            "--data",
            "a.nt",
            "--data",
            "b.ttl",
            "--query",
            "q.sparql",
            "--engine",
            "fedx",
            "--profile",
            "geo",
            "--timeout",
            "5",
            "--format",
            "csv",
            "--explain",
        ]))
        .unwrap();
        match cmd {
            Command::Query {
                data,
                engine,
                profile,
                timeout,
                format,
                explain,
                ..
            } => {
                assert_eq!(data.len(), 2);
                assert_eq!(engine, EngineKind::FedX);
                assert_eq!(profile, ProfileKind::Geo);
                assert_eq!(timeout, Some(5));
                assert_eq!(format, OutputFormat::Csv);
                assert!(explain);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(matches!(parse_args(&s(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            parse_args(&s(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&s(&["query", "--data", "a.nt"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&s(&["query", "--query-text", "ASK {}"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&s(&["generate", "--benchmark", "nope", "--out", "x"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&s(&[
                "query", "--data", "a.nt", "--query", "q", "--engine", "zzz"
            ])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_partial_and_stats_flags() {
        let cmd = parse_args(&s(&[
            "query",
            "--data",
            "a.nt",
            "--query",
            "q.sparql",
            "--partial",
            "--stats",
        ]))
        .unwrap();
        match cmd {
            Command::Query { partial, stats, .. } => {
                assert!(partial);
                assert!(stats);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn partial_is_rejected_for_baseline_engines() {
        let err = parse_args(&s(&[
            "query",
            "--data",
            "a.nt",
            "--query",
            "q",
            "--engine",
            "fedx",
            "--partial",
        ]))
        .unwrap_err();
        match err {
            CliError::Usage(msg) => assert!(msg.contains("--partial")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_bytes_accepts_suffixes_and_rejects_garbage() {
        assert_eq!(parse_bytes("123").unwrap(), 123);
        assert_eq!(parse_bytes("64b").unwrap(), 64);
        assert_eq!(parse_bytes("2KB").unwrap(), 2000);
        assert_eq!(parse_bytes("3mb").unwrap(), 3_000_000);
        assert_eq!(parse_bytes("1gb").unwrap(), 1_000_000_000);
        assert_eq!(parse_bytes("4KiB").unwrap(), 4096);
        assert_eq!(parse_bytes("8MiB").unwrap(), 8 << 20);
        assert_eq!(parse_bytes("2GiB").unwrap(), 2 << 30);
        assert!(parse_bytes("MiB").is_err());
        assert!(parse_bytes("12parsecs").is_err());
        assert!(parse_bytes("99999999999999999999gb").is_err());
    }

    #[test]
    fn parse_memory_flags() {
        let cmd = parse_args(&s(&[
            "query",
            "--data",
            "a.nt",
            "--query",
            "q.sparql",
            "--memory-budget",
            "8MiB",
            "--max-result-rows",
            "100",
        ]))
        .unwrap();
        match cmd {
            Command::Query {
                memory_budget,
                max_result_rows,
                ..
            } => {
                assert_eq!(memory_budget, Some(8 << 20));
                assert_eq!(max_result_rows, Some(100));
            }
            other => panic!("{other:?}"),
        }
        // --memory-budget is lusail-only, like --partial.
        let err = parse_args(&s(&[
            "query",
            "--data",
            "a.nt",
            "--query",
            "q",
            "--engine",
            "fedx",
            "--memory-budget",
            "1mb",
        ]))
        .unwrap_err();
        match err {
            CliError::Usage(msg) => assert!(msg.contains("--memory-budget"), "{msg}"),
            other => panic!("{other:?}"),
        }
        // Zero caps are rejected rather than silently meaning "drop everything".
        assert!(matches!(
            parse_args(&s(&[
                "query",
                "--data",
                "a.nt",
                "--query",
                "q",
                "--max-result-rows",
                "0"
            ])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&s(&["serve", "--data", "a.nt", "--max-result-rows", "0"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn memory_budget_end_to_end() {
        let dir = std::env::temp_dir().join(format!("lusail-cli-mem-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let nt = dir.join("d.nt");
        let mut body = String::new();
        for i in 0..50 {
            body.push_str(&format!(
                "<http://x/s{i}> <http://x/linked> <http://x/d{i}> .\n"
            ));
        }
        std::fs::write(&nt, body).unwrap();
        let base = [
            "query",
            "--data",
            nt.to_str().unwrap(),
            "--query-text",
            "SELECT ?s ?d WHERE { ?s <http://x/linked> ?d }",
        ];

        // Fail-fast: a 1-byte budget cannot admit any wave result.
        let mut args = s(&base);
        args.extend(s(&["--memory-budget", "1"]));
        let mut buf = Vec::new();
        let err = run(&args, &mut buf).unwrap_err();
        match err {
            CliError::Engine(e) => {
                assert!(e.to_string().contains("memory budget"), "{e}")
            }
            other => panic!("{other:?}"),
        }

        // --partial degrades to a truncated result plus a visible warning.
        let mut args = s(&base);
        args.extend(s(&["--memory-budget", "1", "--partial"]));
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# warning"), "{text}");
        assert!(text.contains("memory budget"), "{text}");

        // A generous budget succeeds and --stats reports the memory section.
        let mut args = s(&base);
        args.extend(s(&["--memory-budget", "8MiB", "--stats"]));
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# memory:"), "{text}");
        assert!(text.contains("peak accounted"), "{text}");
        assert!(text.contains("8388608 bytes"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generate_defaults() {
        let cmd = parse_args(&s(&["generate", "--benchmark", "lubm", "--out", "/tmp/x"])).unwrap();
        match cmd {
            Command::Generate {
                benchmark,
                scale,
                endpoints,
                seed,
                ..
            } => {
                assert_eq!(benchmark, "lubm");
                assert_eq!(scale, 1.0);
                assert_eq!(endpoints, 4);
                assert_eq!(seed, 42);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn end_to_end_generate_info_query() {
        let dir = std::env::temp_dir().join(format!("lusail-cli-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut buf = Vec::new();
        run(
            &s(&[
                "generate",
                "--benchmark",
                "lubm",
                "--out",
                dir.to_str().unwrap(),
                "--endpoints",
                "2",
            ]),
            &mut buf,
        )
        .unwrap();
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(files.len(), 2);

        let mut info = Vec::new();
        run(
            &s(&["info", "--data", files[0].to_str().unwrap()]),
            &mut info,
        )
        .unwrap();
        let info_text = String::from_utf8(info).unwrap();
        assert!(info_text.contains("triples"), "{info_text}");

        let mut q = Vec::new();
        let data_args: Vec<String> = files
            .iter()
            .flat_map(|f| ["--data".to_string(), f.to_str().unwrap().to_string()])
            .collect();
        let mut args = s(&["query"]);
        args.extend(data_args);
        args.extend(s(&[
            "--query-text",
            "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> \
             SELECT ?s ?p WHERE { ?s ub:advisor ?p }",
            "--format",
            "csv",
            "--explain",
        ]));
        run(&args, &mut q).unwrap();
        let text = String::from_utf8(q).unwrap();
        assert!(text.contains("# engine        : Lusail"), "{text}");
        assert!(text.lines().count() > 8, "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_roundtrip_via_cli() {
        let dir = std::env::temp_dir().join(format!("lusail-cli-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let nt = dir.join("d.nt");
        std::fs::write(&nt, "<http://x/s> <http://x/p> \"v\" .\n").unwrap();
        let snap = dir.join("d.snap");
        let mut buf = Vec::new();
        run(
            &s(&[
                "snapshot",
                "--data",
                nt.to_str().unwrap(),
                "--out",
                snap.to_str().unwrap(),
            ]),
            &mut buf,
        )
        .unwrap();
        let mut q = Vec::new();
        run(
            &s(&[
                "query",
                "--data",
                snap.to_str().unwrap(),
                "--query-text",
                "SELECT ?s WHERE { ?s <http://x/p> ?o }",
                "--format",
                "csv",
            ]),
            &mut q,
        )
        .unwrap();
        let text = String::from_utf8(q).unwrap();
        assert!(text.contains("http://x/s"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_serve_and_endpoint_flags() {
        let cmd = parse_args(&s(&["serve", "--data", "a.nt", "--port", "8890"])).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                data: vec![PathBuf::from("a.nt")],
                addr: "127.0.0.1:8890".to_string(),
                workers: ServerConfig::default().workers,
                max_result_rows: None,
                federate: None,
            }
        );
        assert!(matches!(
            parse_args(&s(&["serve"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&s(&[
                "serve",
                "--data",
                "a.nt",
                "--addr",
                "0.0.0.0:1",
                "--port",
                "2"
            ])),
            Err(CliError::Usage(_))
        ));

        // A typo'd flag must be rejected, not silently ignored — otherwise
        // `--prot 8080` serves on an ephemeral port the user never asked for.
        match parse_args(&s(&["serve", "--data", "a.nt", "--prot", "8080"])) {
            Err(CliError::Usage(m)) => assert!(m.contains("--prot"), "{m}"),
            other => panic!("expected usage error, got {other:?}"),
        }
        match parse_args(&s(&["query", "--data", "a.nt", "--query-txt", "ASK{}"])) {
            Err(CliError::Usage(m)) => assert!(m.contains("--query-txt"), "{m}"),
            other => panic!("expected usage error, got {other:?}"),
        }

        let cmd = parse_args(&s(&[
            "query",
            "--endpoint",
            "http://127.0.0.1:8890/sparql",
            "--query-text",
            "ASK {}",
        ]))
        .unwrap();
        match cmd {
            Command::Query {
                data, endpoints, ..
            } => {
                assert!(data.is_empty());
                assert_eq!(endpoints, vec!["http://127.0.0.1:8890/sparql".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_then_query_over_http() {
        let dir = std::env::temp_dir().join(format!("lusail-cli-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.nt");
        let b = dir.join("b.nt");
        std::fs::write(&a, "<http://x/s1> <http://x/p> <http://x/o1> .\n").unwrap();
        std::fs::write(&b, "<http://x/s2> <http://x/p> <http://x/o2> .\n").unwrap();

        // serve merges both files into one store.
        let (handle, triples) =
            start_server(&[a.clone(), b.clone()], "127.0.0.1:0", 2, None).unwrap();
        assert_eq!(triples, 2);

        // query federates the HTTP endpoint with a local file.
        let mut buf = Vec::new();
        run(
            &s(&[
                "query",
                "--endpoint",
                &handle.url(),
                "--data",
                a.to_str().unwrap(),
                "--query-text",
                "SELECT ?s ?o WHERE { ?s <http://x/p> ?o }",
                "--format",
                "csv",
            ]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        // s1 is in the file AND on the server (bag semantics: twice); s2
        // only on the server.
        assert_eq!(text.matches("http://x/s1").count(), 2, "{text}");
        assert_eq!(text.matches("http://x/s2").count(), 1, "{text}");
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_serve_federate_flags() {
        let cmd = parse_args(&s(&[
            "serve",
            "--federate",
            "--endpoint",
            "http://127.0.0.1:1/sparql",
            "--data",
            "a.nt",
            "--memory-pool",
            "64MiB",
            "--query-budget",
            "8MiB",
            "--queue",
            "4",
            "--client-max-inflight",
            "2",
            "--query-timeout",
            "10",
            "--cache-ttl",
            "60",
            "--cache-capacity",
            "32",
            "--drain-timeout",
            "7",
            "--watchdog-grace",
            "1",
            "--partial",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                data,
                federate: Some(opts),
                ..
            } => {
                assert_eq!(data, vec![PathBuf::from("a.nt")]);
                assert_eq!(
                    opts.endpoints,
                    vec!["http://127.0.0.1:1/sparql".to_string()]
                );
                assert_eq!(opts.memory_pool, Some(64 << 20));
                assert_eq!(opts.query_budget, Some(8 << 20));
                assert_eq!(opts.queue, Some(4));
                assert_eq!(opts.client_max_inflight, Some(2));
                assert_eq!(opts.query_timeout, Some(10));
                assert_eq!(opts.cache_ttl, Some(60));
                assert_eq!(opts.cache_capacity, Some(32));
                assert_eq!(opts.drain_timeout, Some(7));
                assert_eq!(opts.watchdog_grace, Some(1));
                assert!(opts.partial);
            }
            other => panic!("{other:?}"),
        }

        // Federation knobs without --federate are refused, not ignored.
        match parse_args(&s(&["serve", "--data", "a.nt", "--queue", "4"])) {
            Err(CliError::Usage(m)) => assert!(m.contains("--queue"), "{m}"),
            other => panic!("expected usage error, got {other:?}"),
        }
        // A federation with nothing to federate is refused.
        assert!(matches!(
            parse_args(&s(&["serve", "--federate"])),
            Err(CliError::Usage(_))
        ));
        // A ledger larger than the pool could never be carved.
        assert!(matches!(
            parse_args(&s(&[
                "serve",
                "--federate",
                "--data",
                "a.nt",
                "--memory-pool",
                "1MiB",
                "--query-budget",
                "2MiB",
            ])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&s(&[
                "serve",
                "--federate",
                "--data",
                "a.nt",
                "--client-max-inflight",
                "0",
            ])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_federate_end_to_end() {
        let dir = std::env::temp_dir().join(format!("lusail-cli-fed-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.nt");
        let b = dir.join("b.nt");
        std::fs::write(&a, "<http://x/s1> <http://x/p> <http://x/o1> .\n").unwrap();
        std::fs::write(&b, "<http://x/s2> <http://x/p> <http://x/o2> .\n").unwrap();

        // Two simulated endpoints behind one federation front door.
        let (handle, endpoints) = start_federated_server(
            &[a.clone(), b.clone()],
            "127.0.0.1:0",
            2,
            None,
            &FederateOpts::default(),
        )
        .unwrap();
        assert_eq!(endpoints, 2);

        // The service answers with the federated union, unlike plain
        // serve which would need the files merged into one store.
        let ep = HttpEndpoint::new("front", &handle.url()).unwrap();
        let q = lusail_sparql::parse_query("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }").unwrap();
        let rel = ep.select(&q).unwrap();
        assert_eq!(rel.len(), 2);

        // The repeat is a result-cache hit, visible in /stats.
        assert_eq!(ep.select(&q).unwrap().len(), 2);
        let mut sock = std::net::TcpStream::connect(handle.local_addr()).unwrap();
        sock.write_all(b"GET /stats HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        std::io::Read::read_to_string(&mut sock, &mut text).unwrap();
        assert!(
            text.contains("\"result_cache\":{\"entries\":1,\"hits\":1"),
            "{text}"
        );
        assert!(text.contains("\"pool\":{"), "{text}");

        // Explicit invalidation drops both tiers.
        let mut sock = std::net::TcpStream::connect(handle.local_addr()).unwrap();
        sock.write_all(
            b"POST /cache/invalidate HTTP/1.1\r\nHost: h\r\nContent-Length: 0\r\n\
              Connection: close\r\n\r\n",
        )
        .unwrap();
        let mut text = String::new();
        std::io::Read::read_to_string(&mut sock, &mut text).unwrap();
        assert!(text.contains("\"invalidated\":true"), "{text}");

        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_retry_backoff_and_hedge_flags() {
        let cmd = parse_args(&s(&[
            "query",
            "--endpoint",
            "http://127.0.0.1:1/sparql",
            "--query-text",
            "ASK {}",
            "--retries",
            "5",
            "--backoff",
            "250",
            "--hedge-after",
            "40",
        ]))
        .unwrap();
        match cmd {
            Command::Query {
                retries,
                backoff,
                hedge_after,
                ..
            } => {
                assert_eq!(retries, Some(5));
                assert_eq!(backoff, Some(250));
                assert_eq!(hedge_after, Some(40));
            }
            other => panic!("{other:?}"),
        }

        // Invalid values are rejected like any other flag.
        for bad in [
            vec!["--retries", "many"],
            vec!["--retries", "101"],
            vec!["--retries", "-1"],
            vec!["--backoff", "1ms"],
            vec!["--backoff", "99999999"],
            vec!["--hedge-after", "soon"],
        ] {
            let mut args = s(&[
                "query",
                "--endpoint",
                "http://127.0.0.1:1/sparql",
                "--query-text",
                "ASK {}",
            ]);
            args.extend(s(&bad));
            assert!(
                matches!(parse_args(&args), Err(CliError::Usage(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn parse_replica_group_specs() {
        assert_eq!(
            parse_endpoint_spec("http://h:1/sparql").unwrap(),
            EndpointSpec::Single("http://h:1/sparql".to_string())
        );
        // A `=` inside the URL's query string is not a group separator.
        assert_eq!(
            parse_endpoint_spec("http://h:1/sparql?default-graph=g").unwrap(),
            EndpointSpec::Single("http://h:1/sparql?default-graph=g".to_string())
        );
        assert_eq!(
            parse_endpoint_spec("mirror=http://a:1/sparql,http://b:2/sparql").unwrap(),
            EndpointSpec::Group {
                name: "mirror".to_string(),
                urls: vec![
                    "http://a:1/sparql".to_string(),
                    "http://b:2/sparql".to_string()
                ],
            }
        );
        assert!(parse_endpoint_spec("=http://a:1/sparql").is_err());
        assert!(parse_endpoint_spec("mirror=http://a:1/sparql,").is_err());

        // Malformed groups are rejected at parse time.
        assert!(matches!(
            parse_args(&s(&[
                "query",
                "--endpoint",
                "mirror=http://a:1/s,",
                "--query-text",
                "ASK {}",
            ])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn replica_group_over_http_survives_dead_member() {
        let dir = std::env::temp_dir().join(format!("lusail-cli-replica-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.nt");
        std::fs::write(&a, "<http://x/s1> <http://x/p> <http://x/o1> .\n").unwrap();

        let (handle, _) = start_server(&[a.clone()], "127.0.0.1:0", 2, None).unwrap();
        // Member 0 is a dead address (connection refused); member 1 is the
        // live server. The group must answer with the live member's rows.
        let group = format!("mirror=http://127.0.0.1:9/sparql,{}", handle.url());
        let mut buf = Vec::new();
        run(
            &s(&[
                "query",
                "--endpoint",
                &group,
                "--query-text",
                "SELECT ?s WHERE { ?s <http://x/p> ?o }",
                "--retries",
                "0",
                "--backoff",
                "1",
                "--format",
                "csv",
                "--stats",
            ]),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("http://x/s1"), "{text}");
        assert!(text.contains("mirror"), "{text}");
        assert!(
            text.contains("failovers"),
            "stats must show member rows: {text}"
        );
        assert!(
            text.contains("· http://127.0.0.1:9/sparql"),
            "stats must list the dead member: {text}"
        );
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
