//! The LUBM university benchmark, scaled for federation experiments.
//!
//! One endpoint per university, identical schema everywhere (the paper's
//! point: schema-only decomposition cannot form exclusive groups here),
//! with interlinks through the degree predicates: a professor's or
//! student's `PhDDegreeFrom` / `undergraduateDegreeFrom` /
//! `mastersDegreeFrom` sometimes names *another* university's IRI —
//! exactly the Figure 1 situation that makes `?U` a global join variable.

use crate::prng::SplitMix64;
use crate::BenchQuery;
use lusail_rdf::{vocab, Graph, Term};

/// Generator configuration. The defaults produce ~500 triples per
/// university; `scale` multiplies the per-department population (the
/// paper's LUBM universities hold ~138k triples each — reachable with
/// `scale ≈ 100`, at matching runtime cost).
#[derive(Debug, Clone)]
pub struct LubmConfig {
    pub universities: usize,
    /// Population multiplier applied to every per-department count.
    pub scale: f64,
    pub departments_per_university: usize,
    /// Professors per rank (full/associate/assistant) per department.
    pub professors_per_rank: usize,
    pub grad_students_per_department: usize,
    pub undergrad_students_per_department: usize,
    pub grad_courses_per_department: usize,
    pub courses_per_department: usize,
    /// Probability that a degree edge points at a *remote* university.
    pub interlink_probability: f64,
    pub seed: u64,
}

impl Default for LubmConfig {
    fn default() -> Self {
        LubmConfig {
            universities: 4,
            scale: 1.0,
            departments_per_university: 2,
            professors_per_rank: 3,
            grad_students_per_department: 12,
            undergrad_students_per_department: 8,
            grad_courses_per_department: 5,
            courses_per_department: 4,
            interlink_probability: 0.25,
            seed: 42,
        }
    }
}

impl LubmConfig {
    /// A configuration with `n` universities (other knobs default).
    pub fn with_universities(n: usize) -> Self {
        LubmConfig {
            universities: n,
            ..Default::default()
        }
    }

    fn n(&self, base: usize) -> usize {
        ((base as f64) * self.scale).ceil().max(1.0) as usize
    }

    /// Professors per rank per department at this scale.
    pub fn professors(&self) -> usize {
        self.n(self.professors_per_rank)
    }
    /// Graduate students per department at this scale.
    pub fn grad_students(&self) -> usize {
        self.n(self.grad_students_per_department)
    }
    /// Undergraduates per department at this scale.
    pub fn undergrads(&self) -> usize {
        self.n(self.undergrad_students_per_department)
    }
    /// Graduate courses per department at this scale.
    pub fn grad_courses(&self) -> usize {
        self.n(self.grad_courses_per_department)
    }
    /// Undergraduate courses per department at this scale.
    pub fn courses(&self) -> usize {
        self.n(self.courses_per_department)
    }
}

/// The IRI of university `u`.
pub fn university_iri(u: usize) -> String {
    format!("http://univ{u}.example.org/univ")
}

fn entity(u: usize, local: &str) -> Term {
    Term::iri(format!("http://univ{u}.example.org/{local}"))
}

fn ub(local: &str) -> Term {
    Term::iri(format!("{}{local}", vocab::ub::NS))
}

/// Generate the dataset of one university endpoint.
///
/// Deterministic in `(config.seed, u)`.
pub fn generate_university(config: &LubmConfig, u: usize) -> Graph {
    let mut rng =
        SplitMix64::seed_from_u64(config.seed.wrapping_mul(1_000_003).wrapping_add(u as u64));
    let mut g = Graph::new();
    let univ = Term::iri(university_iri(u));
    g.add_type(univ.clone(), vocab::ub::UNIVERSITY);
    g.add(
        univ.clone(),
        ub("name"),
        Term::literal(format!("University{u}")),
    );
    g.add(
        univ.clone(),
        ub("address"),
        Term::literal(format!("{u} College Road, City{u}")),
    );

    // A degree edge: local university, or a remote one with probability p.
    let degree_target = |rng: &mut SplitMix64| -> Term {
        if config.universities > 1 && rng.gen_bool(config.interlink_probability) {
            let mut other = rng.gen_range(0..config.universities);
            if other == u {
                other = (other + 1) % config.universities;
            }
            Term::iri(university_iri(other))
        } else {
            univ.clone()
        }
    };

    for d in 0..config.departments_per_university {
        let dept = entity(u, &format!("dept{d}"));
        g.add_type(dept.clone(), vocab::ub::DEPARTMENT);
        g.add(dept.clone(), ub("subOrganizationOf"), univ.clone());
        g.add(
            dept.clone(),
            ub("name"),
            Term::literal(format!("Department{d}")),
        );

        // Professors of three ranks.
        let ranks = [
            ("full", vocab::ub::FULL_PROFESSOR),
            ("assoc", vocab::ub::ASSOCIATE_PROFESSOR),
            ("assist", vocab::ub::ASSISTANT_PROFESSOR),
        ];
        let mut professors = Vec::new();
        for (tag, class) in ranks {
            for i in 0..config.professors() {
                let prof = entity(u, &format!("d{d}_{tag}_prof{i}"));
                g.add_type(prof.clone(), class);
                g.add(prof.clone(), ub("worksFor"), dept.clone());
                g.add(
                    prof.clone(),
                    ub("name"),
                    Term::literal(format!("Prof_{tag}_{d}_{i}")),
                );
                g.add(
                    prof.clone(),
                    ub("emailAddress"),
                    Term::literal(format!("{tag}{i}.d{d}@univ{u}.example.org")),
                );
                g.add(prof.clone(), ub("PhDDegreeFrom"), degree_target(&mut rng));
                g.add(
                    prof.clone(),
                    ub("undergraduateDegreeFrom"),
                    degree_target(&mut rng),
                );
                g.add(
                    prof.clone(),
                    ub("mastersDegreeFrom"),
                    degree_target(&mut rng),
                );
                g.add(
                    prof.clone(),
                    ub("researchInterest"),
                    Term::literal(format!("Research{}", rng.gen_range(0..20))),
                );
                // One or two publications per professor.
                for pubn in 0..rng.gen_range(1..=2) {
                    let publication = entity(u, &format!("d{d}_{tag}_prof{i}_pub{pubn}"));
                    g.add_type(publication.clone(), format!("{}Publication", vocab::ub::NS));
                    g.add(publication.clone(), ub("publicationAuthor"), prof.clone());
                    g.add(
                        publication,
                        ub("name"),
                        Term::literal(format!("Publication {tag}{i}-{pubn} of dept {d}")),
                    );
                }
                professors.push(prof);
            }
        }

        // Courses: graduate courses first, then undergraduate ones; each
        // is taught by one professor.
        let mut grad_courses = Vec::new();
        for c in 0..config.grad_courses() {
            let course = entity(u, &format!("d{d}_gcourse{c}"));
            g.add_type(course.clone(), vocab::ub::GRADUATE_COURSE);
            g.add(
                course.clone(),
                ub("name"),
                Term::literal(format!("GradCourse{d}_{c}")),
            );
            // Anchor: every department's gcourse0 is taught by its first
            // associate professor, so queries referencing those entities
            // (the classic LUBM Q1/Q7 shapes) are satisfiable at every
            // configuration; the rest is random.
            let teacher = if c == 0 {
                let first_assoc = config.professors(); // ranks: full then assoc
                &professors[first_assoc.min(professors.len() - 1)]
            } else {
                &professors[rng.gen_range(0..professors.len())]
            };
            g.add(teacher.clone(), ub("teacherOf"), course.clone());
            grad_courses.push(course);
        }
        for c in 0..config.courses() {
            let course = entity(u, &format!("d{d}_course{c}"));
            g.add_type(course.clone(), vocab::ub::COURSE);
            g.add(
                course.clone(),
                ub("name"),
                Term::literal(format!("Course{d}_{c}")),
            );
            let teacher = &professors[rng.gen_range(0..professors.len())];
            g.add(teacher.clone(), ub("teacherOf"), course.clone());
        }

        // Graduate students: member of the department, advised by a
        // professor, taking 1–3 graduate courses. To guarantee the Q2
        // triangle (student takes a course taught by their advisor) has
        // answers, each student's first course is one their advisor
        // teaches when the advisor teaches anything.
        for s in 0..config.grad_students() {
            let student = entity(u, &format!("d{d}_gstud{s}"));
            g.add_type(student.clone(), vocab::ub::GRADUATE_STUDENT);
            g.add(student.clone(), ub("memberOf"), dept.clone());
            g.add(
                student.clone(),
                ub("name"),
                Term::literal(format!("GradStudent{d}_{s}")),
            );
            g.add(
                student.clone(),
                ub("emailAddress"),
                Term::literal(format!("gs{s}.d{d}@univ{u}.example.org")),
            );
            g.add(
                student.clone(),
                ub("undergraduateDegreeFrom"),
                degree_target(&mut rng),
            );
            let advisor = &professors[rng.gen_range(0..professors.len())];
            g.add(student.clone(), ub("advisor"), advisor.clone());
            let advisor_courses: Vec<&Term> = g
                .iter()
                .filter(|t| t.subject == *advisor && t.predicate == ub("teacherOf"))
                .map(|t| &t.object)
                .collect();
            let mut taken: Vec<Term> = Vec::new();
            if let Some(c) = advisor_courses.first() {
                taken.push((*c).clone());
            }
            // Anchor: the first graduate student of each department takes
            // gcourse0 (pairs with the teaching anchor above).
            if s == 0 {
                let c0 = grad_courses[0].clone();
                if !taken.contains(&c0) {
                    taken.push(c0);
                }
            }
            let extra = rng.gen_range(1..=2);
            for _ in 0..extra {
                let c = grad_courses[rng.gen_range(0..grad_courses.len())].clone();
                if !taken.contains(&c) {
                    taken.push(c);
                }
            }
            for course in taken {
                g.add(student.clone(), ub("takesCourse"), course);
            }
        }

        // Undergraduate students.
        for s in 0..config.undergrads() {
            let student = entity(u, &format!("d{d}_ustud{s}"));
            g.add_type(student.clone(), vocab::ub::UNDERGRADUATE_STUDENT);
            g.add(student.clone(), ub("memberOf"), dept.clone());
            g.add(
                student.clone(),
                ub("name"),
                Term::literal(format!("UgStudent{d}_{s}")),
            );
            let n_courses = rng.gen_range(1..=2);
            for _ in 0..n_courses {
                let c = rng.gen_range(0..config.courses());
                g.add(
                    student.clone(),
                    ub("takesCourse"),
                    entity(u, &format!("d{d}_course{c}")),
                );
            }
        }
    }
    g
}

/// Generate all university graphs of a federation.
pub fn generate_all(config: &LubmConfig) -> Vec<(String, Graph)> {
    (0..config.universities)
        .map(|u| (format!("univ{u}"), generate_university(config, u)))
        .collect()
}

/// Total triples across a generated federation (Table 1 reporting).
pub fn total_triples(graphs: &[(String, Graph)]) -> usize {
    graphs.iter().map(|(_, g)| g.len()).sum()
}

const PREFIXES: &str = "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n\
                        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";

/// The paper's LUBM queries. Q1/Q2/Q3 correspond to LUBM Q2/Q9/Q13;
/// Q4 is the paper's variant of Q9 that also retrieves information from
/// (possibly remote) universities.
pub fn queries() -> Vec<BenchQuery> {
    vec![
        // Q1 = LUBM Q2: the triangle graduate student / department /
        // university through memberOf, subOrganizationOf, and
        // undergraduateDegreeFrom.
        BenchQuery {
            name: "Q1",
            text: format!(
                "{PREFIXES}SELECT ?x ?y ?z WHERE {{\n\
                 ?x rdf:type ub:GraduateStudent .\n\
                 ?y rdf:type ub:University .\n\
                 ?z rdf:type ub:Department .\n\
                 ?x ub:memberOf ?z .\n\
                 ?z ub:subOrganizationOf ?y .\n\
                 ?x ub:undergraduateDegreeFrom ?y . }}"
            ),
        },
        // Q2 = LUBM Q9: students taking a course taught by their advisor.
        BenchQuery {
            name: "Q2",
            text: format!(
                "{PREFIXES}SELECT ?x ?y ?z WHERE {{\n\
                 ?x rdf:type ub:GraduateStudent .\n\
                 ?z rdf:type ub:GraduateCourse .\n\
                 ?x ub:advisor ?y .\n\
                 ?y ub:teacherOf ?z .\n\
                 ?x ub:takesCourse ?z . }}"
            ),
        },
        // Q3 = LUBM Q13: people whose undergraduate degree is from
        // university0 — selective, touches only endpoints linking there.
        BenchQuery {
            name: "Q3",
            text: format!(
                "{PREFIXES}SELECT ?x WHERE {{\n\
                 ?x rdf:type ub:GraduateStudent .\n\
                 ?x ub:undergraduateDegreeFrom <{}> . }}",
                university_iri(0)
            ),
        },
        // Q4: the paper's Q9 variant retrieving extra information from
        // remote universities (the advisor's alma mater and its address).
        BenchQuery {
            name: "Q4",
            text: format!(
                "{PREFIXES}SELECT ?x ?y ?u ?a WHERE {{\n\
                 ?x rdf:type ub:GraduateStudent .\n\
                 ?x ub:advisor ?y .\n\
                 ?y ub:teacherOf ?z .\n\
                 ?x ub:takesCourse ?z .\n\
                 ?y ub:PhDDegreeFrom ?u .\n\
                 ?u ub:address ?a . }}"
            ),
        },
    ]
}

/// The full classic LUBM query mix (Q1–Q14), adapted to this generator's
/// schema (no OWL inference: `Person`-level classes are expressed as
/// unions; queries referencing LUBM entities use university 0's IRIs).
/// The paper's federation experiments use only the multi-endpoint subset
/// ([`queries`]); this catalog exercises the *endpoint substrate* the way
/// LUBM exercises a single store.
pub fn full_queries() -> Vec<BenchQuery> {
    let univ0 = university_iri(0);
    let course0 = "http://univ0.example.org/d0_gcourse0";
    let dept0 = "http://univ0.example.org/dept0";
    let prof0 = "http://univ0.example.org/d0_assoc_prof0";
    let q = |name: &'static str, body: String| BenchQuery {
        name,
        text: format!("{PREFIXES}{body}"),
    };
    vec![
        q("L1", format!(
            "SELECT ?x WHERE {{ ?x rdf:type ub:GraduateStudent . ?x ub:takesCourse <{course0}> . }}")),
        q("L2", format!(
            "SELECT ?x ?y ?z WHERE {{ ?x rdf:type ub:GraduateStudent . ?y rdf:type ub:University .              ?z rdf:type ub:Department . ?x ub:memberOf ?z . ?z ub:subOrganizationOf ?y .              ?x ub:undergraduateDegreeFrom ?y . }}")),
        q("L3", format!(
            "SELECT ?x WHERE {{ ?x rdf:type ub:Publication . ?x ub:publicationAuthor <{prof0}> . }}")),
        q("L4", format!(
            "SELECT ?x ?name ?email WHERE {{ ?x ub:worksFor <{dept0}> .              ?x rdf:type ub:AssociateProfessor . ?x ub:name ?name . ?x ub:emailAddress ?email . }}")),
        q("L5", format!(
            "SELECT ?x WHERE {{ ?x ub:memberOf <{dept0}> . }}")),
        q("L6", "SELECT ?x WHERE { { ?x rdf:type ub:GraduateStudent } UNION { ?x rdf:type ub:UndergraduateStudent } }".to_string()),
        q("L7", format!(
            "SELECT ?x ?y WHERE {{ ?x rdf:type ub:GraduateStudent . <{prof0}> ub:teacherOf ?y .              ?x ub:takesCourse ?y . }}")),
        q("L8", format!(
            "SELECT ?x ?y ?email WHERE {{ ?x rdf:type ub:GraduateStudent . ?x ub:memberOf ?y .              ?y ub:subOrganizationOf <{univ0}> . ?x ub:emailAddress ?email . }}")),
        q("L9", "SELECT ?x ?y ?z WHERE { ?x rdf:type ub:GraduateStudent . ?z rdf:type ub:GraduateCourse . ?x ub:advisor ?y . ?y ub:teacherOf ?z . ?x ub:takesCourse ?z . }".to_string()),
        q("L10", format!(
            "SELECT ?x WHERE {{ ?x ub:takesCourse <{course0}> . }}")),
        q("L11", format!(
            "SELECT ?x WHERE {{ ?x rdf:type ub:Department . ?x ub:subOrganizationOf <{univ0}> . }}")),
        q("L12", format!(
            "SELECT ?x ?y WHERE {{ ?x rdf:type ub:FullProfessor . ?x ub:worksFor ?y .              ?y ub:subOrganizationOf <{univ0}> . }}")),
        q("L13", format!(
            "SELECT ?x WHERE {{ ?x rdf:type ub:GraduateStudent . ?x ub:undergraduateDegreeFrom <{univ0}> . }}")),
        q("L14", "SELECT ?x WHERE { ?x rdf:type ub:UndergraduateStudent . }".to_string()),
    ]
}

/// The paper's running-example query Q_a (Figure 2).
pub fn query_qa() -> BenchQuery {
    BenchQuery {
        name: "Qa",
        text: format!(
            "{PREFIXES}SELECT ?S ?P ?U ?A WHERE {{\n\
             ?S ub:advisor ?P .\n\
             ?P ub:teacherOf ?C .\n\
             ?S ub:takesCourse ?C .\n\
             ?P ub:PhDDegreeFrom ?U .\n\
             ?S rdf:type ub:GraduateStudent .\n\
             ?C rdf:type ub:GraduateCourse .\n\
             ?U ub:address ?A . }}"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_federation::NetworkProfile;
    use lusail_store::{Evaluator, Store};

    #[test]
    fn generation_is_deterministic() {
        let cfg = LubmConfig::default();
        let a = generate_university(&cfg, 1);
        let b = generate_university(&cfg, 1);
        assert_eq!(a.triples(), b.triples());
        let other_seed = LubmConfig { seed: 7, ..cfg };
        let c = generate_university(&other_seed, 1);
        assert_ne!(a.triples(), c.triples());
    }

    #[test]
    fn universities_have_interlinks() {
        let cfg = LubmConfig {
            interlink_probability: 0.5,
            ..Default::default()
        };
        let g = generate_university(&cfg, 1);
        let remote = g
            .iter()
            .filter(|t| {
                t.predicate == ub("PhDDegreeFrom") && t.object != Term::iri(university_iri(1))
            })
            .count();
        assert!(remote > 0, "expected remote degree edges at p=0.5");
    }

    #[test]
    fn zero_interlink_probability_stays_local() {
        let cfg = LubmConfig {
            interlink_probability: 0.0,
            ..Default::default()
        };
        let g = generate_university(&cfg, 2);
        let local = Term::iri(university_iri(2));
        assert!(g
            .iter()
            .filter(|t| t.predicate == ub("PhDDegreeFrom"))
            .all(|t| t.object == local));
    }

    #[test]
    fn queries_parse_and_q2_has_local_answers() {
        for q in queries() {
            q.parse();
        }
        query_qa().parse();
        // Q2's triangle must have answers inside a single university.
        let cfg = LubmConfig::default();
        let store = Store::from_graph(&generate_university(&cfg, 0));
        let q2 = &queries()[1];
        let rel = Evaluator::new(&store).query(&q2.parse()).into_solutions();
        assert!(!rel.is_empty(), "Q2 must have intra-university answers");
    }

    #[test]
    fn q3_has_cross_university_answers() {
        // Students at other universities with an undergrad degree from
        // university0 exist at default interlink probability.
        let cfg = LubmConfig::with_universities(4);
        let graphs = generate_all(&cfg);
        let mut found = 0;
        for (name, g) in &graphs {
            if name == "univ0" {
                continue;
            }
            found += g
                .iter()
                .filter(|t| {
                    t.predicate == ub("undergraduateDegreeFrom")
                        && t.object == Term::iri(university_iri(0))
                })
                .count();
        }
        assert!(found > 0, "no remote students with degree from univ0");
    }

    #[test]
    fn full_catalog_parses_and_answers_locally() {
        // Every classic query must have answers over one university's
        // store (the substrate-validation role LUBM plays).
        let cfg = LubmConfig::with_universities(1);
        let store = Store::from_graph(&generate_university(&cfg, 0));
        for q in full_queries() {
            let rel = Evaluator::new(&store).query(&q.parse()).into_solutions();
            assert!(!rel.is_empty(), "{} must have local answers", q.name);
        }
        assert_eq!(full_queries().len(), 14);
    }

    #[test]
    fn full_catalog_federates() {
        use lusail_core::{LusailConfig, LusailEngine};
        let cfg = LubmConfig::with_universities(2);
        let graphs = generate_all(&cfg);
        let fed = crate::federation_from_graphs(graphs, NetworkProfile::instant());
        let engine = LusailEngine::new(fed, LusailConfig::default());
        for q in full_queries() {
            let rel = engine.execute(&q.parse()).unwrap();
            assert!(!rel.is_empty(), "{} must have federated answers", q.name);
        }
    }

    #[test]
    fn scale_multiplies_population() {
        let small = generate_university(&LubmConfig::default(), 0).len();
        let big = generate_university(
            &LubmConfig {
                scale: 4.0,
                ..Default::default()
            },
            0,
        )
        .len();
        assert!(big > 3 * small, "{big} vs {small}");
    }

    #[test]
    fn federation_builds_and_counts() {
        let cfg = LubmConfig::with_universities(2);
        let graphs = generate_all(&cfg);
        assert_eq!(graphs.len(), 2);
        let total = total_triples(&graphs);
        assert!(total > 800, "default scale too small: {total}");
        let fed = crate::federation_from_graphs(graphs, NetworkProfile::instant());
        assert_eq!(fed.len(), 2);
    }
}
