//! A QFed-style federated benchmark: four interlinked life-science
//! datasets (analogues of DrugBank, Diseasome, Sider, and DailyMed), each
//! at its own endpoint.
//!
//! QFed's value for federation testing is not raw size (1.2 M triples in
//! the original) but the *interlinks* between the four datasets; the
//! generator reproduces that structure:
//!
//! * Diseasome diseases point at DrugBank drugs via `possibleDrug`.
//! * Sider drugs link to DrugBank drugs via `owl:sameAs` and carry side
//!   effects.
//! * DailyMed labels point at DrugBank drugs via `genericDrug`.
//!
//! Query names follow QFed's scheme: `C<n>` is the number of classes,
//! `P<n>` the number of cross-dataset predicates; suffixes `F` (filter),
//! `O` (optional), and `B` (big literal objects) modify the base query.
//! The paper's Figure 8 runs C2P2, C2P2F, C2P2OF, C2P2BF, C2P2BOF, C2P2B,
//! and C2P2BO.

use crate::prng::SplitMix64;
use crate::BenchQuery;
use lusail_rdf::{vocab, Graph, Term};

/// Generator configuration. Sizes scale the original benchmark's
/// proportions (DrugBank largest, Diseasome smallest).
#[derive(Debug, Clone)]
pub struct QfedConfig {
    pub drugs: usize,
    pub diseases: usize,
    pub side_effects: usize,
    pub labels: usize,
    pub seed: u64,
}

impl Default for QfedConfig {
    fn default() -> Self {
        QfedConfig {
            drugs: 400,
            diseases: 120,
            side_effects: 200,
            labels: 150,
            seed: 7,
        }
    }
}

pub const DRUGBANK_NS: &str = "http://drugbank.example.org/";
pub const DISEASOME_NS: &str = "http://diseasome.example.org/";
pub const SIDER_NS: &str = "http://sider.example.org/";
pub const DAILYMED_NS: &str = "http://dailymed.example.org/";

fn drug_iri(i: usize) -> Term {
    Term::iri(format!("{DRUGBANK_NS}drug/{i}"))
}

/// A long literal standing in for QFed's "big literal objects" (drug
/// descriptions): these inflate the communicated data volume in the
/// B-variant queries, which is what times FedX out in Figure 8.
fn big_literal(rng: &mut SplitMix64, topic: &str) -> Term {
    let sentences = 30 + rng.gen_range(0..30usize);
    let mut text = String::with_capacity(sentences * 60);
    for s in 0..sentences {
        text.push_str(&format!(
            "{topic} clinical note {s}: dosage {} mg, affinity {:.3}, cohort {}. ",
            rng.gen_range(5..500),
            rng.gen_range(0.0..1.0f64),
            rng.gen_range(10..5000)
        ));
    }
    Term::literal(text)
}

/// Generate the DrugBank-like endpoint.
pub fn generate_drugbank(cfg: &QfedConfig) -> Graph {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0xD4);
    let mut g = Graph::new();
    let p = |l: &str| Term::iri(format!("{DRUGBANK_NS}vocab/{l}"));
    for i in 0..cfg.drugs {
        let d = drug_iri(i);
        g.add_type(d.clone(), format!("{DRUGBANK_NS}vocab/Drug"));
        g.add(d.clone(), p("name"), Term::literal(format!("Drug{i}")));
        g.add(
            d.clone(),
            p("casRegistryNumber"),
            Term::literal(format!("{}-{}-{}", 50 + i, i % 97, i % 9)),
        );
        g.add(
            d.clone(),
            p("description"),
            big_literal(&mut rng, &format!("Drug{i}")),
        );
        g.add(
            d.clone(),
            p("molecularWeight"),
            Term::Literal(lusail_rdf::Literal::double(100.0 + (i as f64) * 1.7)),
        );
        if i > 0 && rng.gen_bool(0.4) {
            g.add(d.clone(), p("interactsWith"), drug_iri(rng.gen_range(0..i)));
        }
        g.add(
            d,
            p("category"),
            Term::literal(format!("Category{}", i % 12)),
        );
    }
    g
}

/// Generate the Diseasome-like endpoint (links into DrugBank).
pub fn generate_diseasome(cfg: &QfedConfig) -> Graph {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0xD1);
    let mut g = Graph::new();
    let p = |l: &str| Term::iri(format!("{DISEASOME_NS}vocab/{l}"));
    for i in 0..cfg.diseases {
        let dis = Term::iri(format!("{DISEASOME_NS}disease/{i}"));
        g.add_type(dis.clone(), format!("{DISEASOME_NS}vocab/Disease"));
        g.add(dis.clone(), p("name"), Term::literal(format!("Disease{i}")));
        g.add(dis.clone(), p("classDegree"), Term::integer((i % 7) as i64));
        // 1–3 candidate drugs in DrugBank: the cross-dataset link.
        for _ in 0..rng.gen_range(1..=3) {
            g.add(
                dis.clone(),
                p("possibleDrug"),
                drug_iri(rng.gen_range(0..cfg.drugs)),
            );
        }
        g.add(
            dis,
            Term::iri(vocab::rdfs::LABEL),
            Term::Literal(lusail_rdf::Literal::lang(format!("disease {i}"), "en")),
        );
    }
    g
}

/// Generate the Sider-like endpoint (links into DrugBank via sameAs).
pub fn generate_sider(cfg: &QfedConfig) -> Graph {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0x51);
    let mut g = Graph::new();
    let p = |l: &str| Term::iri(format!("{SIDER_NS}vocab/{l}"));
    for i in 0..cfg.side_effects {
        let sdrug = Term::iri(format!("{SIDER_NS}drug/{i}"));
        g.add_type(sdrug.clone(), format!("{SIDER_NS}vocab/Drug"));
        g.add(
            sdrug.clone(),
            Term::iri(vocab::owl::SAME_AS),
            drug_iri(rng.gen_range(0..cfg.drugs)),
        );
        let effect = Term::iri(format!("{SIDER_NS}effect/{}", i % 50));
        g.add(sdrug.clone(), p("sideEffect"), effect.clone());
        g.add(
            effect,
            p("effectName"),
            Term::literal(format!("Effect{}", i % 50)),
        );
        g.add(
            sdrug,
            p("frequency"),
            Term::literal(if i % 3 == 0 { "common" } else { "rare" }),
        );
    }
    g
}

/// Generate the DailyMed-like endpoint (links into DrugBank).
pub fn generate_dailymed(cfg: &QfedConfig) -> Graph {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0xDA);
    let mut g = Graph::new();
    let p = |l: &str| Term::iri(format!("{DAILYMED_NS}vocab/{l}"));
    for i in 0..cfg.labels {
        let label = Term::iri(format!("{DAILYMED_NS}label/{i}"));
        g.add_type(label.clone(), format!("{DAILYMED_NS}vocab/Label"));
        g.add(
            label.clone(),
            p("genericDrug"),
            drug_iri(rng.gen_range(0..cfg.drugs)),
        );
        g.add(
            label.clone(),
            p("fullName"),
            Term::literal(format!("Label {i} extended release")),
        );
        g.add(
            label.clone(),
            p("activeIngredient"),
            Term::literal(format!("ingredient{}", i % 40)),
        );
        g.add(
            label,
            p("dosage"),
            big_literal(&mut rng, &format!("Label{i}")),
        );
    }
    g
}

/// All four endpoints, named as in Table 1.
pub fn generate_all(cfg: &QfedConfig) -> Vec<(String, Graph)> {
    vec![
        ("DailyMed".to_string(), generate_dailymed(cfg)),
        ("Diseasome".to_string(), generate_diseasome(cfg)),
        ("DrugBank".to_string(), generate_drugbank(cfg)),
        ("Sider".to_string(), generate_sider(cfg)),
    ]
}

const PREFIXES: &str = "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
                        PREFIX owl: <http://www.w3.org/2002/07/owl#>\n\
                        PREFIX db: <http://drugbank.example.org/vocab/>\n\
                        PREFIX dis: <http://diseasome.example.org/vocab/>\n\
                        PREFIX sid: <http://sider.example.org/vocab/>\n\
                        PREFIX dm: <http://dailymed.example.org/vocab/>\n";

/// The Figure 8 query set.
pub fn queries() -> Vec<BenchQuery> {
    // The C2P2 base: two classes (Disease, Drug) and two cross-dataset
    // predicates (possibleDrug into DrugBank, genericDrug into DrugBank).
    let base = "\
?disease rdf:type dis:Disease .\n\
?disease dis:possibleDrug ?drug .\n\
?drug rdf:type db:Drug .\n\
?label dm:genericDrug ?drug .\n";
    let filter = "FILTER(?cls >= 5)\n";
    let with_class = "?disease dis:classDegree ?cls .\n";
    let optional = "OPTIONAL { ?sdrug owl:sameAs ?drug . ?sdrug sid:sideEffect ?effect }\n";
    let big = "?drug db:description ?desc .\n";

    vec![
        BenchQuery {
            name: "C2P2",
            text: format!("{PREFIXES}SELECT ?disease ?drug ?label WHERE {{\n{base}}}"),
        },
        BenchQuery {
            name: "C2P2F",
            text: format!(
                "{PREFIXES}SELECT ?disease ?drug ?label WHERE {{\n{base}{with_class}{filter}}}"
            ),
        },
        BenchQuery {
            name: "C2P2OF",
            text: format!(
                "{PREFIXES}SELECT ?disease ?drug ?effect WHERE {{\n{base}{with_class}{optional}{filter}}}"
            ),
        },
        BenchQuery {
            name: "C2P2B",
            text: format!("{PREFIXES}SELECT ?disease ?drug ?desc WHERE {{\n{base}{big}}}"),
        },
        BenchQuery {
            name: "C2P2BF",
            text: format!(
                "{PREFIXES}SELECT ?disease ?drug ?desc WHERE {{\n{base}{big}{with_class}{filter}}}"
            ),
        },
        BenchQuery {
            name: "C2P2BO",
            text: format!(
                "{PREFIXES}SELECT ?disease ?drug ?desc ?effect WHERE {{\n{base}{big}{optional}}}"
            ),
        },
        BenchQuery {
            name: "C2P2BOF",
            text: format!(
                "{PREFIXES}SELECT ?disease ?drug ?desc ?effect WHERE {{\n{base}{big}{with_class}{optional}{filter}}}"
            ),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_federation::NetworkProfile;

    #[test]
    fn generators_are_deterministic_and_sized() {
        let cfg = QfedConfig::default();
        let a = generate_all(&cfg);
        let b = generate_all(&cfg);
        for ((_, x), (_, y)) in a.iter().zip(&b) {
            assert_eq!(x.len(), y.len());
        }
        // DrugBank is the largest dataset, as in Table 1.
        let size = |name: &str| a.iter().find(|(n, _)| n == name).unwrap().1.len();
        assert!(size("DrugBank") > size("Diseasome"));
        assert!(size("DrugBank") > size("Sider"));
    }

    #[test]
    fn interlinks_point_into_drugbank() {
        let cfg = QfedConfig::default();
        let dis = generate_diseasome(&cfg);
        let links = dis
            .iter()
            .filter(|t| t.predicate == Term::iri(format!("{DISEASOME_NS}vocab/possibleDrug")))
            .count();
        assert!(links >= cfg.diseases);
        assert!(dis.iter().all(|t| {
            t.predicate != Term::iri(format!("{DISEASOME_NS}vocab/possibleDrug"))
                || t.object.as_iri().unwrap().starts_with(DRUGBANK_NS)
        }));
    }

    #[test]
    fn queries_parse() {
        for q in queries() {
            q.parse();
        }
        assert_eq!(queries().len(), 7);
    }

    #[test]
    fn c2p2_has_answers_on_federation() {
        use lusail_core::{LusailConfig, LusailEngine};
        let cfg = QfedConfig {
            drugs: 60,
            diseases: 20,
            side_effects: 30,
            labels: 30,
            seed: 7,
        };
        let fed = crate::federation_from_graphs(generate_all(&cfg), NetworkProfile::instant());
        let engine = LusailEngine::new(fed, LusailConfig::default());
        let q = &queries()[0];
        let rel = engine.execute(&q.parse()).unwrap();
        assert!(!rel.is_empty(), "C2P2 must have answers");
    }

    #[test]
    fn filtered_variants_are_more_selective() {
        use lusail_core::{LusailConfig, LusailEngine};
        let cfg = QfedConfig {
            drugs: 60,
            diseases: 20,
            side_effects: 30,
            labels: 30,
            seed: 7,
        };
        let fed = crate::federation_from_graphs(generate_all(&cfg), NetworkProfile::instant());
        let engine = LusailEngine::new(fed, LusailConfig::default());
        let all = queries();
        let base = engine.execute(&all[0].parse()).unwrap().len();
        let filtered = engine.execute(&all[1].parse()).unwrap().len();
        assert!(
            filtered < base,
            "filter must reduce results ({filtered} vs {base})"
        );
        assert!(filtered > 0);
    }
}
