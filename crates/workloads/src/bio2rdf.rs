//! A Bio2RDF-style real-endpoint workload (Table 2 of the paper).
//!
//! The paper extracts five representative queries (R1–R5) from the Bio2RDF
//! query log and runs them against the public Bio2RDF endpoints. We stand
//! up the equivalent structure: four bio endpoints (genes, proteins,
//! pathways, publications) whose entities cross-reference each other, and
//! five log-style queries that traverse those links.

use crate::prng::SplitMix64;
use crate::BenchQuery;
use lusail_rdf::{vocab, Graph, Term};

pub const GENES_NS: &str = "http://genes.bio.example.org/";
pub const PROTEINS_NS: &str = "http://proteins.bio.example.org/";
pub const PATHWAYS_NS: &str = "http://pathways.bio.example.org/";
pub const PUBS_NS: &str = "http://pubs.bio.example.org/";

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct Bio2RdfConfig {
    pub genes: usize,
    pub proteins: usize,
    pub pathways: usize,
    pub publications: usize,
    pub seed: u64,
}

impl Default for Bio2RdfConfig {
    fn default() -> Self {
        Bio2RdfConfig {
            genes: 150,
            proteins: 200,
            pathways: 40,
            publications: 120,
            seed: 99,
        }
    }
}

fn iri(ns: &str, local: impl std::fmt::Display) -> Term {
    Term::iri(format!("{ns}{local}"))
}

/// Genes endpoint: genes with symbols, organisms, and encoded proteins.
pub fn generate_genes(cfg: &Bio2RdfConfig) -> Graph {
    let mut g = Graph::new();
    let p = |l: &str| iri(GENES_NS, format!("vocab/{l}"));
    for i in 0..cfg.genes {
        let gene = iri(GENES_NS, format!("gene/{i}"));
        g.add_type(gene.clone(), format!("{GENES_NS}vocab/Gene"));
        g.add(gene.clone(), p("symbol"), Term::literal(format!("BG{i}")));
        g.add(
            gene.clone(),
            p("organism"),
            Term::literal(if i % 3 == 0 { "human" } else { "mouse" }),
        );
        g.add(
            gene.clone(),
            p("encodes"),
            iri(PROTEINS_NS, format!("protein/{}", i % cfg.proteins)),
        );
        g.add(gene, p("chromosome"), Term::integer((i % 23) as i64 + 1));
    }
    g
}

/// Proteins endpoint: proteins participating in pathways.
pub fn generate_proteins(cfg: &Bio2RdfConfig) -> Graph {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0x70);
    let mut g = Graph::new();
    let p = |l: &str| iri(PROTEINS_NS, format!("vocab/{l}"));
    for i in 0..cfg.proteins {
        let prot = iri(PROTEINS_NS, format!("protein/{i}"));
        g.add_type(prot.clone(), format!("{PROTEINS_NS}vocab/Protein"));
        g.add(
            prot.clone(),
            p("name"),
            Term::literal(format!("Protein {i}")),
        );
        g.add(
            prot.clone(),
            p("mass"),
            Term::integer(rng.gen_range(10_000..200_000)),
        );
        g.add(
            prot.clone(),
            p("participatesIn"),
            iri(PATHWAYS_NS, format!("pathway/{}", i % cfg.pathways)),
        );
        if rng.gen_bool(0.5) {
            g.add(
                prot,
                p("function"),
                Term::literal(format!("function-{}", i % 12)),
            );
        }
    }
    g
}

/// Pathways endpoint.
pub fn generate_pathways(cfg: &Bio2RdfConfig) -> Graph {
    let mut g = Graph::new();
    let p = |l: &str| iri(PATHWAYS_NS, format!("vocab/{l}"));
    for i in 0..cfg.pathways {
        let pw = iri(PATHWAYS_NS, format!("pathway/{i}"));
        g.add_type(pw.clone(), format!("{PATHWAYS_NS}vocab/Pathway"));
        g.add(pw.clone(), p("name"), Term::literal(format!("Pathway {i}")));
        g.add(
            pw,
            p("category"),
            Term::literal(if i % 4 == 0 { "metabolic" } else { "signaling" }),
        );
    }
    g
}

/// Publications endpoint: papers mentioning genes.
pub fn generate_publications(cfg: &Bio2RdfConfig) -> Graph {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0x9B);
    let mut g = Graph::new();
    let p = |l: &str| iri(PUBS_NS, format!("vocab/{l}"));
    for i in 0..cfg.publications {
        let pub_ = iri(PUBS_NS, format!("article/{i}"));
        g.add_type(pub_.clone(), format!("{PUBS_NS}vocab/Article"));
        g.add(
            pub_.clone(),
            p("title"),
            Term::literal(format!("Bio article {i}")),
        );
        g.add(
            pub_.clone(),
            p("year"),
            Term::integer(2000 + (i as i64 % 20)),
        );
        for _ in 0..rng.gen_range(1..=2) {
            g.add(
                pub_.clone(),
                p("mentions"),
                iri(GENES_NS, format!("gene/{}", rng.gen_range(0..cfg.genes))),
            );
        }
        g.add(
            pub_,
            Term::iri(vocab::rdfs::SEE_ALSO),
            iri(PATHWAYS_NS, format!("pathway/{}", i % cfg.pathways)),
        );
    }
    g
}

/// The four endpoints.
pub fn generate_all(cfg: &Bio2RdfConfig) -> Vec<(String, Graph)> {
    vec![
        ("Genes".to_string(), generate_genes(cfg)),
        ("Proteins".to_string(), generate_proteins(cfg)),
        ("Pathways".to_string(), generate_pathways(cfg)),
        ("Publications".to_string(), generate_publications(cfg)),
    ]
}

const PREFIXES: &str = "\
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n\
PREFIX gene: <http://genes.bio.example.org/vocab/>\n\
PREFIX prot: <http://proteins.bio.example.org/vocab/>\n\
PREFIX path: <http://pathways.bio.example.org/vocab/>\n\
PREFIX pub: <http://pubs.bio.example.org/vocab/>\n";

/// The five query-log-style queries of Table 2.
pub fn queries() -> Vec<BenchQuery> {
    let q = |name: &'static str, body: &str| BenchQuery {
        name,
        text: format!("{PREFIXES}{body}"),
    };
    vec![
        // R1: human genes and the proteins they encode.
        q(
            "R1",
            "SELECT ?gene ?symbol ?protein ?pname WHERE {\n\
?gene rdf:type gene:Gene .\n\
?gene gene:symbol ?symbol .\n\
?gene gene:organism \"human\" .\n\
?gene gene:encodes ?protein .\n\
?protein prot:name ?pname .\n}",
        ),
        // R2: proteins in metabolic pathways.
        q(
            "R2",
            "SELECT ?protein ?pathway ?pwname WHERE {\n\
?protein prot:participatesIn ?pathway .\n\
?pathway path:name ?pwname .\n\
?pathway path:category \"metabolic\" .\n}",
        ),
        // R3: the full gene → protein → pathway chain with mass filter.
        q(
            "R3",
            "SELECT ?gene ?protein ?pathway WHERE {\n\
?gene gene:encodes ?protein .\n\
?protein prot:mass ?mass .\n\
?protein prot:participatesIn ?pathway .\n\
?pathway path:category ?cat .\n\
FILTER(?mass > 100000)\n}",
        ),
        // R4: publications mentioning genes with their pathways (4
        // endpoints, optional function annotation).
        q(
            "R4",
            "SELECT ?article ?gene ?pathway WHERE {\n\
?article pub:mentions ?gene .\n\
?article pub:year ?year .\n\
?gene gene:encodes ?protein .\n\
?protein prot:participatesIn ?pathway .\n\
OPTIONAL { ?protein prot:function ?f }\n\
FILTER(?year >= 2010)\n}",
        ),
        // R5: recent articles per pathway via rdfs:seeAlso.
        q(
            "R5",
            "SELECT ?article ?title ?pwname WHERE {\n\
?article pub:title ?title .\n\
?article rdfs:seeAlso ?pw .\n\
?pw path:name ?pwname .\n\
?article pub:year ?year .\n\
FILTER(?year >= 2015)\n}",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_federation::NetworkProfile;

    #[test]
    fn queries_parse() {
        assert_eq!(queries().len(), 5);
        for q in queries() {
            q.parse();
        }
    }

    #[test]
    fn all_queries_nonempty_under_lusail() {
        use lusail_core::{LusailConfig, LusailEngine};
        let cfg = Bio2RdfConfig::default();
        let fed = crate::federation_from_graphs(generate_all(&cfg), NetworkProfile::instant());
        let engine = LusailEngine::new(fed, LusailConfig::default());
        for q in queries() {
            let rel = engine.execute(&q.parse()).unwrap();
            assert!(!rel.is_empty(), "query {} returned nothing", q.name);
        }
    }

    #[test]
    fn cross_references_resolve() {
        let cfg = Bio2RdfConfig::default();
        let genes = generate_genes(&cfg);
        let proteins = generate_proteins(&cfg);
        let protein_subjects: std::collections::HashSet<&Term> =
            proteins.iter().map(|t| &t.subject).collect();
        for t in genes.iter() {
            if t.predicate == iri(GENES_NS, "vocab/encodes") {
                assert!(protein_subjects.contains(&t.object));
            }
        }
    }
}
