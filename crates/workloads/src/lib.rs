//! # lusail-workloads
//!
//! Data generators and query catalogs for the three benchmarks of the
//! paper's evaluation (Section 5, Table 1), plus the Bio2RDF-style
//! real-endpoint workload of Table 2:
//!
//! * [`lubm`] — the synthetic LUBM university benchmark: N universities,
//!   one endpoint each, interlinked through `ub:PhDDegreeFrom` /
//!   `ub:undergraduateDegreeFrom` / `ub:mastersDegreeFrom` edges to other
//!   universities. Queries Q1–Q4 (the paper's selection: LUBM Q2, Q9, Q13,
//!   and a Q9 variant that reaches into remote universities).
//! * [`qfed`] — a QFed-style federation of four life-science datasets
//!   (DrugBank, Diseasome, Sider, DailyMed analogues) with cross-dataset
//!   links, and the C2P2 query family with its F / O / B modifiers.
//! * [`largerdf`] — a LargeRDFBench-style federation of 13 heterogeneous
//!   datasets (three large TCGA-like ones), with the S (simple), C
//!   (complex), and B (large) query categories.
//! * [`bio2rdf`] — five query-log-style queries over Bio2RDF-like
//!   endpoints.
//!
//! All generators are deterministic given a seed and configurable in
//! scale; defaults are sized so the full benchmark suite runs on one
//! machine. The real benchmarks' absolute triple counts (Table 1) are
//! reproduced *proportionally*, not absolutely — see EXPERIMENTS.md.

pub mod bio2rdf;
pub mod largerdf;
pub mod lubm;
pub mod prng;
pub mod qfed;

use lusail_federation::{
    EndpointLimits, Federation, NetworkProfile, SimulatedEndpoint, SparqlEndpoint,
};
use lusail_rdf::Graph;
use std::sync::Arc;

/// Wrap named graphs as a federation of simulated endpoints sharing one
/// network profile.
pub fn federation_from_graphs(graphs: Vec<(String, Graph)>, profile: NetworkProfile) -> Federation {
    federation_from_graphs_limited(graphs, profile, EndpointLimits::default())
}

/// Like [`federation_from_graphs`], with server-side limits on every
/// endpoint (used by the "real endpoints" experiments: real servers reject
/// oversized requests and cap result sizes).
pub fn federation_from_graphs_limited(
    graphs: Vec<(String, Graph)>,
    profile: NetworkProfile,
    limits: EndpointLimits,
) -> Federation {
    Federation::new(
        graphs
            .into_iter()
            .map(|(name, g)| {
                Arc::new(
                    SimulatedEndpoint::new(name, lusail_store::Store::from_graph(&g), profile)
                        .with_limits(limits),
                ) as Arc<dyn SparqlEndpoint>
            })
            .collect(),
    )
}

/// A named benchmark query.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// The paper's label, e.g. `"Q3"`, `"C2P2BF"`, `"S14"`, `"B1"`.
    pub name: &'static str,
    /// The SPARQL text.
    pub text: String,
}

impl BenchQuery {
    /// Parse the query (panicking on malformed catalog entries — those are
    /// bugs in this crate, covered by tests).
    pub fn parse(&self) -> lusail_sparql::ast::Query {
        lusail_sparql::parse_query(&self.text).unwrap_or_else(|e| {
            panic!(
                "benchmark query {} is malformed: {e}\n{}",
                self.name, self.text
            )
        })
    }
}
