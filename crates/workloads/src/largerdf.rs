//! A LargeRDFBench-style federation: 13 heterogeneous datasets.
//!
//! LargeRDFBench federates 13 real datasets totalling > 1 B triples
//! (Table 1 of the paper). We reproduce its *structure* at configurable
//! scale: per-endpoint schemas are distinct (unlike LUBM), the three
//! LinkedTCGA endpoints dominate the data volume, and the datasets are
//! interlinked the way the real ones are (`owl:sameAs` into DBpedia,
//! cross-references from KEGG to ChEBI, gene symbols shared between
//! LinkedTCGA and Affymetrix, …).
//!
//! Queries come in the benchmark's three categories:
//!
//! * **S1–S14** (simple): 2–5 triple patterns over 2–3 endpoints.
//! * **C1–C10** (complex): more triple patterns and advanced clauses —
//!   `OPTIONAL`, `FILTER`, `UNION`, `DISTINCT`, `LIMIT`. C5 joins two
//!   *disjoint* subgraphs through a filter variable (unsupported by the
//!   baselines, exactly as in the paper).
//! * **B1–B8** (large): large intermediate results; B1 unions two large
//!   pattern sets; B5 and B6 are disjoint-plus-filter like C5.

use crate::prng::SplitMix64;
use crate::BenchQuery;
use lusail_rdf::{vocab, Graph, Literal, Term};

/// Namespaces of the 13 endpoints.
pub mod ns {
    pub const TCGA: &str = "http://tcga.example.org/vocab/";
    pub const TCGA_M: &str = "http://tcga-m.example.org/";
    pub const TCGA_E: &str = "http://tcga-e.example.org/";
    pub const TCGA_A: &str = "http://tcga-a.example.org/";
    pub const CHEBI: &str = "http://chebi.example.org/";
    pub const DBPEDIA: &str = "http://dbpedia.example.org/";
    pub const DRUGBANK: &str = "http://drugbank-l.example.org/";
    pub const GEONAMES: &str = "http://geonames.example.org/";
    pub const JAMENDO: &str = "http://jamendo.example.org/";
    pub const KEGG: &str = "http://kegg.example.org/";
    pub const LINKEDMDB: &str = "http://linkedmdb.example.org/";
    pub const NYTIMES: &str = "http://nytimes.example.org/";
    pub const SWDF: &str = "http://swdf.example.org/";
    pub const AFFYMETRIX: &str = "http://affymetrix.example.org/";
}

/// Entity counts, scaled by `scale`. Proportions follow Table 1: the two
/// big LinkedTCGA endpoints dominate, Semantic Web Dog Food is tiny.
#[derive(Debug, Clone)]
pub struct LargeRdfConfig {
    pub scale: f64,
    pub seed: u64,
}

impl Default for LargeRdfConfig {
    fn default() -> Self {
        LargeRdfConfig {
            scale: 1.0,
            seed: 13,
        }
    }
}

impl LargeRdfConfig {
    fn n(&self, base: usize) -> usize {
        ((base as f64) * self.scale).ceil().max(1.0) as usize
    }

    // Base entity counts (scale 1.0 ≈ 25k triples total).
    pub fn patients(&self) -> usize {
        self.n(60)
    }
    pub fn expr_results(&self) -> usize {
        self.n(900)
    }
    pub fn meth_results(&self) -> usize {
        self.n(1100)
    }
    pub fn chebi_compounds(&self) -> usize {
        self.n(150)
    }
    pub fn dbp_drugs(&self) -> usize {
        self.n(120)
    }
    pub fn dbp_films(&self) -> usize {
        self.n(100)
    }
    pub fn dbp_places(&self) -> usize {
        self.n(90)
    }
    pub fn dbp_persons(&self) -> usize {
        self.n(90)
    }
    pub fn drugs(&self) -> usize {
        self.n(100)
    }
    pub fn geo_places(&self) -> usize {
        self.n(220)
    }
    pub fn artists(&self) -> usize {
        self.n(40)
    }
    pub fn records(&self) -> usize {
        self.n(160)
    }
    pub fn kegg_compounds(&self) -> usize {
        self.n(130)
    }
    pub fn films(&self) -> usize {
        self.n(110)
    }
    pub fn topics(&self) -> usize {
        self.n(80)
    }
    pub fn papers(&self) -> usize {
        self.n(50)
    }
    pub fn genes(&self) -> usize {
        self.n(120)
    }
}

fn iri(ns: &str, local: impl std::fmt::Display) -> Term {
    Term::iri(format!("{ns}{local}"))
}

fn big_literal(rng: &mut SplitMix64, topic: &str, sentences: usize) -> Term {
    let mut text = String::new();
    for s in 0..sentences {
        text.push_str(&format!(
            "{topic} paragraph {s}: measurement {:.4}, annotation {}. ",
            rng.gen_range(0.0..1.0f64),
            rng.gen_range(0..10_000)
        ));
    }
    Term::literal(text)
}

/// Gene symbols shared (as literals) by LinkedTCGA and Affymetrix — the
/// cross-endpoint join used by C9 and B5.
pub fn gene_symbol(g: usize) -> Term {
    Term::literal(format!("GENE{g}"))
}

// ---- generators -----------------------------------------------------

/// LinkedTCGA-A: patient annotations (the small TCGA endpoint).
pub fn generate_tcga_a(cfg: &LargeRdfConfig) -> Graph {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0xA);
    let mut g = Graph::new();
    let p = |l: &str| iri(ns::TCGA, l);
    for i in 0..cfg.patients() {
        let pat = iri(ns::TCGA_A, format!("patient/{i}"));
        g.add_type(pat.clone(), format!("{}Patient", ns::TCGA));
        g.add(
            pat.clone(),
            p("bcrPatientBarcode"),
            Term::literal(format!("TCGA-{i:04}")),
        );
        g.add(
            pat.clone(),
            p("gender"),
            Term::literal(if i % 2 == 0 { "MALE" } else { "FEMALE" }),
        );
        g.add(
            pat.clone(),
            p("ageAtDiagnosis"),
            Term::integer(rng.gen_range(25..90)),
        );
        g.add(
            pat,
            p("tumorStatus"),
            Term::literal(if rng.gen_bool(0.3) {
                "WITH TUMOR"
            } else {
                "TUMOR FREE"
            }),
        );
    }
    g
}

/// LinkedTCGA-E: gene expression results (large).
pub fn generate_tcga_e(cfg: &LargeRdfConfig) -> Graph {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0xE);
    let mut g = Graph::new();
    let p = |l: &str| iri(ns::TCGA, l);
    for i in 0..cfg.expr_results() {
        let r = iri(ns::TCGA_E, format!("result/{i}"));
        g.add_type(r.clone(), format!("{}ExpressionResult", ns::TCGA));
        g.add(
            r.clone(),
            p("patientRef"),
            iri(ns::TCGA_A, format!("patient/{}", i % cfg.patients())),
        );
        g.add(r.clone(), p("geneSymbol"), gene_symbol(i % cfg.genes()));
        g.add(
            r,
            p("expressionValue"),
            Term::Literal(Literal::double(
                (rng.gen_range(0.0..16.0f64) * 1000.0).round() / 1000.0,
            )),
        );
    }
    g
}

/// LinkedTCGA-M: methylation results (largest).
pub fn generate_tcga_m(cfg: &LargeRdfConfig) -> Graph {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0x11);
    let mut g = Graph::new();
    let p = |l: &str| iri(ns::TCGA, l);
    for i in 0..cfg.meth_results() {
        let r = iri(ns::TCGA_M, format!("result/{i}"));
        g.add_type(r.clone(), format!("{}MethylationResult", ns::TCGA));
        g.add(
            r.clone(),
            p("patientRef"),
            iri(ns::TCGA_A, format!("patient/{}", i % cfg.patients())),
        );
        g.add(r.clone(), p("geneSymbol"), gene_symbol(i % cfg.genes()));
        g.add(
            r,
            p("betaValue"),
            Term::Literal(Literal::double(
                (rng.gen_range(0.0..1.0f64) * 10_000.0).round() / 10_000.0,
            )),
        );
    }
    g
}

/// ChEBI: chemical compounds.
pub fn generate_chebi(cfg: &LargeRdfConfig) -> Graph {
    let mut g = Graph::new();
    let p = |l: &str| iri(ns::CHEBI, format!("vocab/{l}"));
    for i in 0..cfg.chebi_compounds() {
        let c = iri(ns::CHEBI, format!("compound/{i}"));
        g.add_type(c.clone(), format!("{}vocab/Compound", ns::CHEBI));
        g.add(
            c.clone(),
            p("name"),
            Term::literal(format!("chebi-compound-{i}")),
        );
        g.add(
            c.clone(),
            p("formula"),
            Term::literal(format!("C{}H{}O{}", i % 30 + 1, i % 60 + 2, i % 10)),
        );
        // Masses overlap DrugBank's molecular masses (C5's filter join).
        g.add(
            c.clone(),
            p("mass"),
            Term::Literal(Literal::double(100.0 + (i as f64) * 1.5)),
        );
        g.add(
            c,
            p("status"),
            Term::literal(if i % 5 == 0 { "checked" } else { "submitted" }),
        );
    }
    g
}

/// DBpedia subset: drugs, films, places, persons with labels/abstracts.
pub fn generate_dbpedia(cfg: &LargeRdfConfig) -> Graph {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0xDB);
    let mut g = Graph::new();
    let p = |l: &str| iri(ns::DBPEDIA, format!("ontology/{l}"));
    for i in 0..cfg.dbp_drugs() {
        let d = iri(ns::DBPEDIA, format!("resource/drug_{i}"));
        g.add_type(d.clone(), format!("{}ontology/Drug", ns::DBPEDIA));
        g.add(
            d.clone(),
            Term::iri(vocab::rdfs::LABEL),
            Term::Literal(Literal::lang(format!("Drug {i}"), "en")),
        );
        g.add(
            d,
            p("abstract"),
            big_literal(&mut rng, &format!("drug {i}"), 12),
        );
    }
    for i in 0..cfg.dbp_films() {
        let f = iri(ns::DBPEDIA, format!("resource/film_{i}"));
        g.add_type(f.clone(), format!("{}ontology/Film", ns::DBPEDIA));
        g.add(
            f.clone(),
            Term::iri(vocab::rdfs::LABEL),
            Term::Literal(Literal::lang(format!("Film {i}"), "en")),
        );
        g.add(
            f.clone(),
            p("director"),
            iri(
                ns::DBPEDIA,
                format!("resource/person_{}", i % cfg.dbp_persons()),
            ),
        );
        g.add(f, p("releaseYear"), Term::integer(1960 + (i as i64 % 60)));
    }
    for i in 0..cfg.dbp_places() {
        let pl = iri(ns::DBPEDIA, format!("resource/place_{i}"));
        g.add_type(pl.clone(), format!("{}ontology/Place", ns::DBPEDIA));
        g.add(
            pl.clone(),
            Term::iri(vocab::rdfs::LABEL),
            Term::Literal(Literal::lang(format!("Place {i}"), "en")),
        );
        g.add(
            pl,
            p("country"),
            Term::literal(format!("Country{}", i % 20)),
        );
    }
    for i in 0..cfg.dbp_persons() {
        let pe = iri(ns::DBPEDIA, format!("resource/person_{i}"));
        g.add_type(pe.clone(), format!("{}ontology/Person", ns::DBPEDIA));
        g.add(
            pe,
            Term::iri(vocab::rdfs::LABEL),
            Term::Literal(Literal::lang(format!("Person {i}"), "en")),
        );
    }
    g
}

/// DrugBank (LargeRDFBench variant): links into DBpedia and KEGG.
pub fn generate_drugbank(cfg: &LargeRdfConfig) -> Graph {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0xDD);
    let mut g = Graph::new();
    let p = |l: &str| iri(ns::DRUGBANK, format!("vocab/{l}"));
    for i in 0..cfg.drugs() {
        let d = iri(ns::DRUGBANK, format!("drug/{i}"));
        g.add_type(d.clone(), format!("{}vocab/Drug", ns::DRUGBANK));
        g.add(
            d.clone(),
            p("brandName"),
            Term::literal(format!("Brand{i}")),
        );
        g.add(
            d.clone(),
            p("casRegistryNumber"),
            Term::literal(format!("{}-{}-{}", 100 + i, i % 89, i % 7)),
        );
        g.add(
            d.clone(),
            p("keggCompoundId"),
            iri(ns::KEGG, format!("compound/{}", i % cfg.kegg_compounds())),
        );
        g.add(
            d.clone(),
            Term::iri(vocab::owl::SAME_AS),
            iri(
                ns::DBPEDIA,
                format!("resource/drug_{}", i % cfg.dbp_drugs()),
            ),
        );
        g.add(
            d.clone(),
            p("molecularMass"),
            Term::Literal(Literal::double(100.0 + (i as f64) * 1.5)),
        );
        g.add(
            d.clone(),
            p("description"),
            big_literal(&mut rng, &format!("Drug {i}"), 10),
        );
        if rng.gen_bool(0.5) {
            g.add(
                d,
                p("target"),
                iri(ns::DRUGBANK, format!("target/{}", i % 25)),
            );
        }
    }
    for t in 0..25 {
        let target = iri(ns::DRUGBANK, format!("target/{t}"));
        g.add_type(target.clone(), format!("{}vocab/Target", ns::DRUGBANK));
        g.add(target, p("targetName"), Term::literal(format!("Target{t}")));
    }
    g
}

/// GeoNames: places with populations.
pub fn generate_geonames(cfg: &LargeRdfConfig) -> Graph {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0x9E);
    let mut g = Graph::new();
    let p = |l: &str| iri(ns::GEONAMES, format!("ontology/{l}"));
    for i in 0..cfg.geo_places() {
        let pl = iri(ns::GEONAMES, format!("place/{i}"));
        g.add_type(pl.clone(), format!("{}ontology/Feature", ns::GEONAMES));
        g.add(
            pl.clone(),
            p("name"),
            Term::literal(format!("Geo Place {i}")),
        );
        g.add(
            pl.clone(),
            p("population"),
            Term::integer(rng.gen_range(100..5_000_000)),
        );
        g.add(
            pl.clone(),
            p("parentCountry"),
            iri(ns::GEONAMES, format!("country/{}", i % 20)),
        );
        if i % 3 == 0 {
            g.add(
                pl.clone(),
                Term::iri(vocab::owl::SAME_AS),
                iri(
                    ns::DBPEDIA,
                    format!("resource/place_{}", i % cfg.dbp_places()),
                ),
            );
        }
        if rng.gen_bool(0.4) {
            g.add(
                pl,
                p("alternateName"),
                Term::literal(format!("Alt name {i}")),
            );
        }
    }
    g
}

/// Jamendo: music records and artists based near GeoNames places.
pub fn generate_jamendo(cfg: &LargeRdfConfig) -> Graph {
    let mut g = Graph::new();
    let p = |l: &str| iri(ns::JAMENDO, format!("vocab/{l}"));
    for a in 0..cfg.artists() {
        let artist = iri(ns::JAMENDO, format!("artist/{a}"));
        g.add_type(artist.clone(), format!("{}vocab/MusicArtist", ns::JAMENDO));
        g.add(
            artist.clone(),
            p("name"),
            Term::literal(format!("Artist {a}")),
        );
        g.add(
            artist,
            p("basedNear"),
            iri(ns::GEONAMES, format!("place/{}", a % cfg.geo_places())),
        );
    }
    for r in 0..cfg.records() {
        let rec = iri(ns::JAMENDO, format!("record/{r}"));
        g.add_type(rec.clone(), format!("{}vocab/Record", ns::JAMENDO));
        g.add(
            rec.clone(),
            p("maker"),
            iri(ns::JAMENDO, format!("artist/{}", r % cfg.artists())),
        );
        g.add(
            rec.clone(),
            p("title"),
            Term::literal(format!("Record {r}")),
        );
        g.add(rec, p("date"), Term::integer(2001 + (r as i64 % 19)));
    }
    g
}

/// KEGG: compounds cross-referencing ChEBI.
pub fn generate_kegg(cfg: &LargeRdfConfig) -> Graph {
    let mut g = Graph::new();
    let p = |l: &str| iri(ns::KEGG, format!("vocab/{l}"));
    for i in 0..cfg.kegg_compounds() {
        let c = iri(ns::KEGG, format!("compound/{i}"));
        g.add_type(c.clone(), format!("{}vocab/Compound", ns::KEGG));
        g.add(
            c.clone(),
            p("xref"),
            iri(ns::CHEBI, format!("compound/{}", i % cfg.chebi_compounds())),
        );
        g.add(
            c.clone(),
            p("formula"),
            Term::literal(format!("C{}H{}", i % 25 + 1, i % 50 + 2)),
        );
        g.add(
            c.clone(),
            p("mass"),
            Term::Literal(Literal::double(80.0 + (i as f64) * 2.1)),
        );
        g.add(
            c,
            p("pathway"),
            iri(ns::KEGG, format!("pathway/{}", i % 15)),
        );
    }
    for e in 0..cfg.kegg_compounds() / 4 {
        let enz = iri(ns::KEGG, format!("enzyme/{e}"));
        g.add_type(enz.clone(), format!("{}vocab/Enzyme", ns::KEGG));
        g.add(
            enz,
            p("catalyzes"),
            iri(
                ns::KEGG,
                format!("compound/{}", e * 3 % cfg.kegg_compounds()),
            ),
        );
    }
    g
}

/// LinkedMDB: films linked to DBpedia.
pub fn generate_linkedmdb(cfg: &LargeRdfConfig) -> Graph {
    let mut g = Graph::new();
    let p = |l: &str| iri(ns::LINKEDMDB, format!("vocab/{l}"));
    for i in 0..cfg.films() {
        let f = iri(ns::LINKEDMDB, format!("film/{i}"));
        g.add_type(f.clone(), format!("{}vocab/Film", ns::LINKEDMDB));
        g.add(f.clone(), p("title"), Term::literal(format!("Movie {i}")));
        g.add(
            f.clone(),
            p("director"),
            iri(ns::LINKEDMDB, format!("director/{}", i % 30)),
        );
        g.add(
            f.clone(),
            p("genre"),
            Term::literal(format!("Genre{}", i % 8)),
        );
        g.add(
            f.clone(),
            Term::iri(vocab::owl::SAME_AS),
            iri(
                ns::DBPEDIA,
                format!("resource/film_{}", i % cfg.dbp_films()),
            ),
        );
        for a in 0..2 {
            g.add(
                f.clone(),
                p("actor"),
                iri(ns::LINKEDMDB, format!("actor/{}", (i + a * 7) % 60)),
            );
        }
    }
    g
}

/// New York Times: topics linked to DBpedia people and places.
pub fn generate_nytimes(cfg: &LargeRdfConfig) -> Graph {
    let mut g = Graph::new();
    let p = |l: &str| iri(ns::NYTIMES, format!("vocab/{l}"));
    for i in 0..cfg.topics() {
        let t = iri(ns::NYTIMES, format!("topic/{i}"));
        g.add_type(t.clone(), format!("{}vocab/Topic", ns::NYTIMES));
        g.add(
            t.clone(),
            p("topicLabel"),
            Term::literal(format!("Topic {i}")),
        );
        g.add(
            t.clone(),
            p("articleCount"),
            Term::integer((i as i64 % 300) + 1),
        );
        let target = if i % 2 == 0 {
            iri(
                ns::DBPEDIA,
                format!("resource/person_{}", i % cfg.dbp_persons()),
            )
        } else {
            iri(
                ns::DBPEDIA,
                format!("resource/place_{}", i % cfg.dbp_places()),
            )
        };
        g.add(t, Term::iri(vocab::owl::SAME_AS), target);
    }
    g
}

/// Semantic Web Dog Food: papers and authors (tiny, as in Table 1).
pub fn generate_swdf(cfg: &LargeRdfConfig) -> Graph {
    let mut g = Graph::new();
    let p = |l: &str| iri(ns::SWDF, format!("vocab/{l}"));
    for i in 0..cfg.papers() {
        let paper = iri(ns::SWDF, format!("paper/{i}"));
        g.add_type(paper.clone(), format!("{}vocab/InProceedings", ns::SWDF));
        g.add(
            paper.clone(),
            p("title"),
            Term::literal(format!("Paper {i}")),
        );
        g.add(
            paper.clone(),
            p("year"),
            Term::integer(2001 + (i as i64 % 19)),
        );
        let author = iri(
            ns::SWDF,
            format!("author/{}", i % (cfg.papers() / 2).max(1)),
        );
        g.add(paper, p("maker"), author.clone());
        g.add_type(author.clone(), format!("{}vocab/Person", ns::SWDF));
        g.add(
            author,
            Term::iri(vocab::owl::SAME_AS),
            iri(
                ns::DBPEDIA,
                format!("resource/person_{}", i % cfg.dbp_persons()),
            ),
        );
    }
    g
}

/// Affymetrix: probesets with gene symbols shared with LinkedTCGA.
pub fn generate_affymetrix(cfg: &LargeRdfConfig) -> Graph {
    let mut g = Graph::new();
    let p = |l: &str| iri(ns::AFFYMETRIX, format!("vocab/{l}"));
    for i in 0..cfg.genes() {
        let probe = iri(ns::AFFYMETRIX, format!("probeset/{i}"));
        g.add_type(probe.clone(), format!("{}vocab/Probeset", ns::AFFYMETRIX));
        g.add(probe.clone(), p("symbol"), gene_symbol(i));
        g.add(
            probe.clone(),
            p("chromosome"),
            Term::literal(format!("chr{}", i % 23 + 1)),
        );
        g.add(
            probe,
            p("xrefKegg"),
            iri(ns::KEGG, format!("compound/{}", i % cfg.kegg_compounds())),
        );
    }
    g
}

/// All 13 endpoints, named as in Table 1.
pub fn generate_all(cfg: &LargeRdfConfig) -> Vec<(String, Graph)> {
    vec![
        ("LinkedTCGA-M".to_string(), generate_tcga_m(cfg)),
        ("LinkedTCGA-E".to_string(), generate_tcga_e(cfg)),
        ("LinkedTCGA-A".to_string(), generate_tcga_a(cfg)),
        ("ChEBI".to_string(), generate_chebi(cfg)),
        ("DBPedia-Subset".to_string(), generate_dbpedia(cfg)),
        ("DrugBank".to_string(), generate_drugbank(cfg)),
        ("GeoNames".to_string(), generate_geonames(cfg)),
        ("Jamendo".to_string(), generate_jamendo(cfg)),
        ("KEGG".to_string(), generate_kegg(cfg)),
        ("LinkedMDB".to_string(), generate_linkedmdb(cfg)),
        ("NewYorkTimes".to_string(), generate_nytimes(cfg)),
        ("SemanticWebDogFood".to_string(), generate_swdf(cfg)),
        ("Affymetrix".to_string(), generate_affymetrix(cfg)),
    ]
}

const PREFIXES: &str = "\
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n\
PREFIX owl: <http://www.w3.org/2002/07/owl#>\n\
PREFIX tcga: <http://tcga.example.org/vocab/>\n\
PREFIX chebi: <http://chebi.example.org/vocab/>\n\
PREFIX dbo: <http://dbpedia.example.org/ontology/>\n\
PREFIX db: <http://drugbank-l.example.org/vocab/>\n\
PREFIX geo: <http://geonames.example.org/ontology/>\n\
PREFIX jam: <http://jamendo.example.org/vocab/>\n\
PREFIX kegg: <http://kegg.example.org/vocab/>\n\
PREFIX mdb: <http://linkedmdb.example.org/vocab/>\n\
PREFIX nyt: <http://nytimes.example.org/vocab/>\n\
PREFIX swdf: <http://swdf.example.org/vocab/>\n\
PREFIX affy: <http://affymetrix.example.org/vocab/>\n";

fn q(name: &'static str, body: &str) -> BenchQuery {
    BenchQuery {
        name,
        text: format!("{PREFIXES}{body}"),
    }
}

/// The 14 simple queries.
pub fn simple_queries() -> Vec<BenchQuery> {
    vec![
        q("S1", "SELECT ?drug ?label WHERE {\n?drug rdf:type db:Drug .\n?drug owl:sameAs ?r .\n?r rdfs:label ?label . }"),
        q("S2", "SELECT ?drug ?formula WHERE {\n?drug db:keggCompoundId ?c .\n?c kegg:formula ?formula . }"),
        q("S3", "SELECT ?drug ?mass WHERE {\n?drug db:keggCompoundId ?c .\n?c kegg:mass ?mass .\nFILTER(?mass > 150) }"),
        q("S4", "SELECT ?c ?name WHERE {\n?c kegg:xref ?chebi .\n?chebi chebi:name ?name . }"),
        q("S5", "SELECT ?topic ?label WHERE {\n?topic rdf:type nyt:Topic .\n?topic owl:sameAs ?r .\n?r rdfs:label ?label . }"),
        q("S6", "SELECT ?film ?director ?label WHERE {\n?film mdb:director ?director .\n?film owl:sameAs ?r .\n?r rdfs:label ?label . }"),
        q("S7", "SELECT ?artist ?place ?pop WHERE {\n?artist jam:basedNear ?place .\n?place geo:population ?pop . }"),
        q("S8", "SELECT ?place ?name WHERE {\n?place geo:parentCountry <http://geonames.example.org/country/3> .\n?place geo:name ?name . }"),
        q("S9", "SELECT ?paper ?author ?label WHERE {\n?paper swdf:maker ?author .\n?author owl:sameAs ?r .\n?r rdfs:label ?label . }"),
        q("S10", "SELECT ?c ?mass WHERE {\n?kc kegg:xref ?c .\n?c chebi:mass ?mass .\nFILTER(?mass > 130) }"),
        q("S11", "SELECT ?topic ?place ?country WHERE {\n?topic owl:sameAs ?place .\n?place rdf:type dbo:Place .\n?place dbo:country ?country . }"),
        q("S12", "SELECT ?probe ?pathway WHERE {\n?probe affy:xrefKegg ?c .\n?c kegg:pathway ?pathway . }"),
        // S13/S14: the two "simple" queries with relatively large
        // intermediate results (the paper: Lusail is fastest on these).
        q("S13", "SELECT ?drug ?abstract WHERE {\n?drug rdf:type db:Drug .\n?drug owl:sameAs ?r .\n?r dbo:abstract ?abstract . }"),
        q("S14", "SELECT ?film ?genre ?label WHERE {\n?film mdb:genre ?genre .\n?film owl:sameAs ?r .\n?r rdfs:label ?label . }"),
    ]
}

/// The 10 complex queries.
pub fn complex_queries() -> Vec<BenchQuery> {
    vec![
        // C1: a four-endpoint chain with optional target info — heavy for
        // bound-join engines (FedX times out in the paper).
        q(
            "C1",
            "SELECT ?drug ?label ?formula ?chebiName WHERE {\n\
?drug rdf:type db:Drug .\n\
?drug owl:sameAs ?r .\n\
?r rdfs:label ?label .\n\
?drug db:keggCompoundId ?kc .\n\
?kc kegg:formula ?formula .\n\
?kc kegg:xref ?chebi .\n\
?chebi chebi:name ?chebiName .\n\
OPTIONAL { ?drug db:target ?t . ?t db:targetName ?tname }\n}",
        ),
        // C2: highly selective (a handful of results).
        q(
            "C2",
            "SELECT ?film ?label ?director ?dlabel WHERE {\n\
?film owl:sameAs <http://dbpedia.example.org/resource/film_3> .\n\
<http://dbpedia.example.org/resource/film_3> rdfs:label ?label .\n\
<http://dbpedia.example.org/resource/film_3> dbo:director ?director .\n\
?director rdfs:label ?dlabel .\n\
?film mdb:genre ?genre .\n}",
        ),
        // C3: DISTINCT over artists near large places.
        q(
            "C3",
            "SELECT DISTINCT ?artist ?name ?pop WHERE {\n\
?artist rdf:type jam:MusicArtist .\n\
?artist jam:name ?name .\n\
?artist jam:basedNear ?place .\n\
?place geo:population ?pop .\n\
?rec jam:maker ?artist .\n\
?rec jam:date ?date .\n\
FILTER(?pop > 1000000)\n}",
        ),
        // C4: LIMIT 50 — FedX can cut execution short; Lusail computes all
        // results first (the paper's explanation of C4).
        q(
            "C4",
            "SELECT ?film ?title ?label WHERE {\n\
?film rdf:type mdb:Film .\n\
?film mdb:title ?title .\n\
?film owl:sameAs ?r .\n\
?r rdfs:label ?label .\n\
?film mdb:actor ?actor .\n} LIMIT 50",
        ),
        // C5: two disjoint subgraphs joined by a filter variable — only
        // Lusail evaluates this.
        q(
            "C5",
            "SELECT ?drug ?cpd WHERE {\n\
?drug rdf:type db:Drug .\n\
?drug db:molecularMass ?w .\n\
?cpd rdf:type chebi:Compound .\n\
?cpd chebi:mass ?m .\n\
FILTER(?w = ?m)\n}",
        ),
        // C6: UNION over NYT links to persons and places.
        q(
            "C6",
            "SELECT ?topic ?label WHERE {\n\
?topic rdf:type nyt:Topic .\n\
?topic owl:sameAs ?r .\n\
{ ?r rdf:type dbo:Person . ?r rdfs:label ?label }\n\
UNION { ?r rdf:type dbo:Place . ?r rdfs:label ?label }\n}",
        ),
        // C7: the three TCGA endpoints joined on patient.
        q(
            "C7",
            "SELECT ?patient ?age ?ev ?bv WHERE {\n\
?patient rdf:type tcga:Patient .\n\
?patient tcga:ageAtDiagnosis ?age .\n\
?er tcga:patientRef ?patient .\n\
?er tcga:expressionValue ?ev .\n\
?mr tcga:patientRef ?patient .\n\
?mr tcga:betaValue ?bv .\n\
FILTER(?age > 80)\n}",
        ),
        // C8: OPTIONAL-heavy geography query.
        q(
            "C8",
            "SELECT ?place ?name ?alt WHERE {\n\
?place rdf:type geo:Feature .\n\
?place geo:name ?name .\n\
?place geo:population ?pop .\n\
OPTIONAL { ?place geo:alternateName ?alt }\n\
FILTER(?pop > 4000000)\n}",
        ),
        // C9: the long literal-join chain TCGA → Affymetrix → KEGG →
        // ChEBI (FedX times out in the paper).
        q(
            "C9",
            "SELECT ?er ?gene ?chebiName WHERE {\n\
?er rdf:type tcga:ExpressionResult .\n\
?er tcga:geneSymbol ?gene .\n\
?probe affy:symbol ?gene .\n\
?probe affy:xrefKegg ?kc .\n\
?kc kegg:xref ?chebi .\n\
?chebi chebi:name ?chebiName .\n}",
        ),
        // C10: scholarly data joined with DBpedia.
        q(
            "C10",
            "SELECT DISTINCT ?paper ?title ?plabel WHERE {\n\
?paper rdf:type swdf:InProceedings .\n\
?paper swdf:title ?title .\n\
?paper swdf:year ?year .\n\
?paper swdf:maker ?author .\n\
?author owl:sameAs ?person .\n\
?person rdfs:label ?plabel .\n\
FILTER(?year >= 2010)\n}",
        ),
    ]
}

/// The 8 large (big) queries.
pub fn big_queries() -> Vec<BenchQuery> {
    vec![
        // B1: a UNION between two large result sets (the paper notes B1
        // performs "a union operation between two sets of triple patterns"
        // over the largest endpoints).
        q("B1", "SELECT ?r ?patient ?v WHERE {\n\
{ ?r rdf:type tcga:ExpressionResult . ?r tcga:patientRef ?patient . ?r tcga:expressionValue ?v }\n\
UNION { ?r rdf:type tcga:MethylationResult . ?r tcga:patientRef ?patient . ?r tcga:betaValue ?v }\n}"),
        // B2: big literals (abstracts) for every linked drug.
        q("B2", "SELECT ?drug ?abstract ?desc WHERE {\n\
?drug owl:sameAs ?r .\n\
?r dbo:abstract ?abstract .\n\
?drug db:description ?desc .\n}"),
        // B3: low-selectivity filter over the biggest endpoint + patient.
        q("B3", "SELECT ?er ?patient ?gender ?v WHERE {\n\
?er tcga:patientRef ?patient .\n\
?er tcga:expressionValue ?v .\n\
?patient tcga:gender ?gender .\n\
FILTER(?v > 0.5)\n}"),
        // B4: full KEGG × ChEBI join.
        q("B4", "SELECT ?kc ?chebi ?mass ?formula WHERE {\n\
?kc kegg:xref ?chebi .\n\
?kc kegg:formula ?formula .\n\
?chebi chebi:mass ?mass .\n}"),
        // B5: disjoint subgraphs + filter over the gene-symbol literals.
        q("B5", "SELECT ?er ?probe WHERE {\n\
?er rdf:type tcga:ExpressionResult .\n\
?er tcga:geneSymbol ?g1 .\n\
?probe rdf:type affy:Probeset .\n\
?probe affy:symbol ?g2 .\n\
FILTER(?g1 = ?g2)\n}"),
        // B6: disjoint subgraphs + filter on numeric overlap.
        q("B6", "SELECT ?rec ?paper WHERE {\n\
?rec rdf:type jam:Record .\n\
?rec jam:date ?d .\n\
?paper rdf:type swdf:InProceedings .\n\
?paper swdf:year ?y .\n\
FILTER(?d = ?y)\n}"),
        // B7: all films with actors, genres, and DBpedia labels.
        q("B7", "SELECT ?film ?actor ?genre ?label WHERE {\n\
?film mdb:actor ?actor .\n\
?film mdb:genre ?genre .\n\
?film owl:sameAs ?r .\n\
?r rdfs:label ?label .\n}"),
        // B8: the generic owl:sameAs pattern — relevant to *many*
        // endpoints; exercises SAPE's delayed subqueries and source
        // refinement.
        q("B8", "SELECT ?s ?r ?label WHERE {\n\
?s owl:sameAs ?r .\n\
?r rdfs:label ?label .\n}"),
    ]
}

/// All queries, labelled, in the order the paper plots them.
pub fn all_queries() -> Vec<BenchQuery> {
    let mut out = simple_queries();
    out.extend(complex_queries());
    out.extend(big_queries());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_endpoints_with_table1_proportions() {
        let cfg = LargeRdfConfig::default();
        let graphs = generate_all(&cfg);
        assert_eq!(graphs.len(), 13);
        let size = |name: &str| graphs.iter().find(|(n, _)| n == name).unwrap().1.len();
        // TCGA-M > TCGA-E > everything else; SWDF smallest-ish.
        assert!(size("LinkedTCGA-M") > size("LinkedTCGA-E"));
        assert!(size("LinkedTCGA-E") > size("ChEBI"));
        assert!(size("SemanticWebDogFood") < size("GeoNames"));
    }

    #[test]
    fn scale_parameter_scales() {
        let small = generate_all(&LargeRdfConfig {
            scale: 0.5,
            ..Default::default()
        });
        let big = generate_all(&LargeRdfConfig {
            scale: 2.0,
            ..Default::default()
        });
        let total = |gs: &[(String, Graph)]| gs.iter().map(|(_, g)| g.len()).sum::<usize>();
        assert!(total(&big) > 3 * total(&small));
    }

    #[test]
    fn all_32_queries_parse() {
        let qs = all_queries();
        assert_eq!(qs.len(), 14 + 10 + 8);
        for query in qs {
            query.parse();
        }
    }

    #[test]
    fn interlinks_resolve() {
        // Every owl:sameAs object in DrugBank must exist in DBpedia.
        let cfg = LargeRdfConfig {
            scale: 0.3,
            ..Default::default()
        };
        let db = generate_drugbank(&cfg);
        let dbp = generate_dbpedia(&cfg);
        let dbp_subjects: std::collections::HashSet<&Term> =
            dbp.iter().map(|t| &t.subject).collect();
        for t in db.iter() {
            if t.predicate == Term::iri(vocab::owl::SAME_AS) {
                assert!(
                    dbp_subjects.contains(&t.object),
                    "dangling sameAs link: {}",
                    t.object
                );
            }
        }
    }

    #[test]
    fn gene_symbols_shared_between_tcga_and_affymetrix() {
        let cfg = LargeRdfConfig {
            scale: 0.3,
            ..Default::default()
        };
        let tcga = generate_tcga_e(&cfg);
        let affy = generate_affymetrix(&cfg);
        let affy_symbols: std::collections::HashSet<&Term> = affy
            .iter()
            .filter(|t| t.predicate == iri(ns::AFFYMETRIX, "vocab/symbol"))
            .map(|t| &t.object)
            .collect();
        let shared = tcga
            .iter()
            .filter(|t| t.predicate == iri(ns::TCGA, "geneSymbol"))
            .filter(|t| affy_symbols.contains(&t.object))
            .count();
        assert!(shared > 0, "no shared gene symbols");
    }
}
