//! A small seeded PRNG for dataset generation.
//!
//! The generators must be deterministic given a seed and free of external
//! dependencies (the build environment has no crates.io access), so this
//! module replaces `rand`: SplitMix64 (Steele, Lea & Flood, "Fast
//! Splittable Pseudorandom Number Generators", OOPSLA 2014) with the same
//! small API surface the workload generators used from `rand::Rng`.
//! SplitMix64 passes BigCrush and is the standard seeder for xorshift
//! families — more than enough statistical quality for synthetic RDF.

use std::ops::{Range, RangeInclusive};

/// A SplitMix64 generator. Construct with [`SplitMix64::seed_from_u64`];
/// equal seeds yield equal streams on every platform.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Any seed (including 0) is fine: the increment
    /// constant guarantees a full 2^64 period.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform double in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of [0, 1]"
        );
        self.next_f64() < p
    }

    /// A uniform value in `range` (half-open or inclusive integer ranges,
    /// half-open float ranges). Panics on an empty range.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform integer in `[0, span)` via the widening-multiply trick
    /// (Lemire): unbiased enough for data generation without a rejection
    /// loop, and exactly reproducible.
    fn bounded(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Ranges [`SplitMix64::gen_range`] can sample a `T` from. The output is a
/// type *parameter* (as in `rand`) so an expected result type — say the
/// `i64` of `Term::integer(rng.gen_range(0..100))` — selects the impl and
/// pins the literal range's integer type.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut SplitMix64) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SplitMix64) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range on empty range {start}..={end}");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.bounded(span) as i128) as $t
            }
        }
    )*};
}

int_range!(i32, i64, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut SplitMix64) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range {:?}", self);
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Known-answer vector for seed 1234567 (reference SplitMix64).
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..2000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&y));
            let z: i32 = rng.gen_range(1..=2);
            assert!((1..=2).contains(&z));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn ranges_cover_all_values() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_degenerate_and_balanced() {
        let mut rng = SplitMix64::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "biased coin: {heads}");
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(11);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::seed_from_u64(0).gen_range(5..5usize);
    }
}
