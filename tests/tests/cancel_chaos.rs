//! Seeded cancel-chaos e2e suite for the federation service's query
//! lifecycle supervision (`LUSAIL_CHAOS_SEED` picks the fault stream;
//! default 42; replay a CI failure by exporting the printed seed).
//!
//! The three supervision paths from the acceptance bar, plus admin
//! cancellation, each proven over real loopback HTTP:
//!
//! * a client that disconnects mid-query has its cancel token tripped,
//!   its pool ledger freed, and outbound endpoint requests halted well
//!   before the query deadline;
//! * a `FaultProfile::hang`-wedged query (the endpoint accepts, then
//!   never answers and ignores its time budget) is reaped by the
//!   watchdog at deadline + grace, with its memory returned to the pool;
//! * `POST /queries/<id>/cancel` kills a running query from the outside
//!   and its caller receives a structured 499 error naming the reason;
//! * an injected engine panic yields a 500 JSON error on that one
//!   connection while the server keeps serving and `peak_ledgers` is
//!   fully released.

use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::{
    FaultProfile, FaultyConfig, FaultyEndpoint, Federation, NetworkProfile, SimulatedEndpoint,
    SparqlEndpoint,
};
use lusail_rdf::{Graph, Term};
use lusail_server::federate::{FederateConfig, FederationService};
use lusail_server::{QueryBackend, ServerConfig, ServerHandle, SparqlServer};
use lusail_store::Store;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn chaos_seed() -> u64 {
    std::env::var("LUSAIL_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Three graphs whose answers require cross-endpoint joins, so a query
/// keeps issuing outbound requests long enough to be killed mid-flight.
fn shards() -> Vec<(String, Graph)> {
    let mut people = Graph::new();
    let mut advisors = Graph::new();
    let mut depts = Graph::new();
    for i in 0..5 {
        people.add(
            Term::iri(format!("http://x/s{i}")),
            Term::iri("http://x/name"),
            Term::literal(format!("name-{i}")),
        );
    }
    for i in 0..3 {
        advisors.add(
            Term::iri(format!("http://x/s{i}")),
            Term::iri("http://x/advisor"),
            Term::iri(format!("http://x/a{i}")),
        );
        depts.add(
            Term::iri(format!("http://x/a{i}")),
            Term::iri("http://x/dept"),
            Term::iri(format!("http://x/d{}", i % 2)),
        );
    }
    vec![
        ("people".to_string(), people),
        ("advisors".to_string(), advisors),
        ("depts".to_string(), depts),
    ]
}

const JOIN_QUERY: &str = "SELECT ?n ?d WHERE { ?s <http://x/name> ?n . \
     ?s <http://x/advisor> ?a . ?a <http://x/dept> ?d }";

/// Mount a service over the given endpoints and expose it on loopback.
fn front_door(
    endpoints: Vec<Arc<dyn SparqlEndpoint>>,
    config: FederateConfig,
) -> (Arc<FederationService>, ServerHandle) {
    let engine = LusailEngine::new(Federation::new(endpoints), LusailConfig::default());
    let service = Arc::new(FederationService::new(engine, config));
    let server = SparqlServer::with_backend(
        "127.0.0.1:0",
        Arc::clone(&service) as Arc<dyn QueryBackend>,
        ServerConfig::default(),
    )
    .expect("bind front door");
    (service, server.spawn())
}

/// Raw one-shot HTTP exchange; returns (status line, full response text).
fn raw_roundtrip(addr: SocketAddr, request: &str) -> (String, String) {
    let mut sock = TcpStream::connect(addr).expect("connect");
    sock.write_all(request.as_bytes()).expect("send");
    let mut text = String::new();
    sock.read_to_string(&mut text).expect("read");
    let status = text.lines().next().unwrap_or("").to_string();
    (status, text)
}

fn get_request(query: &str) -> String {
    format!(
        "GET /sparql?query={} HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
        lusail_federation::http::percent_encode(query)
    )
}

fn stats(addr: SocketAddr) -> String {
    let (status, text) = raw_roundtrip(
        addr,
        "GET /stats HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
    );
    assert!(status.contains("200"), "{text}");
    text
}

/// Pull `"key":N` out of a flat JSON blob.
fn json_u64(text: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let start = text
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} in {text}"))
        + needle.len();
    text[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("numeric {key} in {text}"))
}

#[test]
fn client_disconnect_frees_the_ledger_and_halts_outbound_requests() {
    let seed = chaos_seed();
    println!("LUSAIL_CHAOS_SEED={seed}");
    // High per-request latency keeps the cross-endpoint join in flight
    // for hundreds of milliseconds; the seed jitters it so different CI
    // runs exercise different interleavings of monitor poll vs. phase.
    let latency = Duration::from_millis(90 + seed % 40);
    let sims: Vec<Arc<SimulatedEndpoint>> = shards()
        .iter()
        .map(|(name, g)| {
            Arc::new(SimulatedEndpoint::new(
                name.clone(),
                Store::from_graph(g),
                NetworkProfile {
                    latency,
                    ..NetworkProfile::instant()
                },
            ))
        })
        .collect();
    let deadline = Duration::from_secs(30);
    let (service, front) = front_door(
        sims.iter()
            .map(|s| Arc::clone(s) as Arc<dyn SparqlEndpoint>)
            .collect(),
        FederateConfig {
            query_timeout: Some(deadline),
            ..Default::default()
        },
    );

    // Send the join query, then vanish mid-execution: the full close
    // sends FIN, which the per-query disconnect monitor reads as EOF.
    let started = Instant::now();
    let mut sock = TcpStream::connect(front.local_addr()).expect("connect");
    sock.write_all(get_request(JOIN_QUERY).as_bytes())
        .expect("send");
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(
        service.pool().in_use(),
        1,
        "the query must hold its ledger while executing"
    );
    drop(sock);

    // The ledger must come back long before the 30s deadline would
    // return it. Generous bound: the monitor polls at 100ms and the
    // engine cancels at its next cooperative check.
    let freed_within = Duration::from_secs(5);
    while service.pool().in_use() > 0 {
        assert!(
            started.elapsed() < freed_within,
            "ledger still held {:?} after the client vanished",
            started.elapsed()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        started.elapsed() < deadline / 2,
        "release must not be deadline-driven"
    );

    // Outbound traffic halts with the cancellation: the endpoint
    // counters freeze once the ledger is back.
    let before: Vec<u64> = sims.iter().map(|s| s.traffic().requests).collect();
    std::thread::sleep(Duration::from_millis(250));
    let after: Vec<u64> = sims.iter().map(|s| s.traffic().requests).collect();
    assert_eq!(
        before, after,
        "a cancelled query must stop issuing endpoint requests"
    );

    let text = stats(front.local_addr());
    assert!(json_u64(&text, "client_disconnected") >= 1, "{text}");
    assert_eq!(json_u64(&text, "inflight"), 0, "{text}");
    front.shutdown();
}

#[test]
fn watchdog_reaps_a_hang_wedged_query_and_returns_its_memory() {
    let seed = chaos_seed();
    println!("LUSAIL_CHAOS_SEED={seed}");
    let (name, g) = &shards()[0];
    let wedged = Arc::new(FaultyEndpoint::with_config(
        Arc::new(SimulatedEndpoint::new(
            name.clone(),
            Store::from_graph(g),
            NetworkProfile::instant(),
        )),
        seed,
        FaultProfile::hang(),
        FaultyConfig::default(),
    ));
    // The wedge ignores its time budget, so the cooperative deadline
    // never fires: only the watchdog (deadline + grace) can free it.
    let (service, front) = front_door(
        vec![Arc::clone(&wedged) as Arc<dyn SparqlEndpoint>],
        FederateConfig {
            query_timeout: Some(Duration::from_millis(150)),
            watchdog_grace: Duration::from_millis(100),
            ..Default::default()
        },
    );

    let started = Instant::now();
    let (status, text) = raw_roundtrip(
        front.local_addr(),
        &get_request("SELECT ?s WHERE { ?s <http://x/name> ?n }"),
    );
    assert!(status.contains("504"), "{text}");
    assert!(text.contains("watchdog"), "{text}");
    assert!(
        started.elapsed() >= Duration::from_millis(250),
        "the reap happens at deadline + grace, not at the deadline"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the reap must actually free the wedged query"
    );

    // The memory came back with the reap.
    assert_eq!(service.pool().in_use(), 0, "ledger returned to the pool");
    assert!(service.pool().stats().peak_ledgers >= 1);
    let text = stats(front.local_addr());
    assert!(json_u64(&text, "watchdog_reaps") >= 1, "{text}");
    assert!(json_u64(&text, "watchdog_reaped") >= 1, "{text}");
    assert_eq!(json_u64(&text, "inflight"), 0, "{text}");
    front.shutdown();
}

#[test]
fn admin_cancel_returns_a_structured_error_to_the_caller() {
    let seed = chaos_seed();
    println!("LUSAIL_CHAOS_SEED={seed}");
    let (name, g) = &shards()[0];
    let wedged = Arc::new(FaultyEndpoint::with_config(
        Arc::new(SimulatedEndpoint::new(
            name.clone(),
            Store::from_graph(g),
            NetworkProfile::instant(),
        )),
        seed,
        FaultProfile::hang(),
        FaultyConfig::default(),
    ));
    // No deadline at all: without the admin nothing would ever free this
    // query — the watchdog only reaps past a deadline.
    let (_service, front) = front_door(
        vec![Arc::clone(&wedged) as Arc<dyn SparqlEndpoint>],
        FederateConfig {
            query_timeout: None,
            ..Default::default()
        },
    );
    let addr = front.local_addr();

    let victim = std::thread::spawn(move || {
        raw_roundtrip(
            addr,
            &get_request("SELECT ?s WHERE { ?s <http://x/name> ?n }"),
        )
    });
    std::thread::sleep(Duration::from_millis(150));

    // The registry names the wedged query.
    let (status, list) = raw_roundtrip(
        addr,
        "GET /queries HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
    );
    assert!(status.contains("200"), "{list}");
    assert!(list.contains("\"phase\":\"executing\""), "{list}");
    assert!(list.contains("\"cancelled\":null"), "{list}");
    let id = json_u64(&list, "id");

    // Cancel it from a second connection; first win is acknowledged.
    let cancel = format!(
        "POST /queries/{id}/cancel HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\
         Content-Length: 0\r\n\r\n"
    );
    let (status, body) = raw_roundtrip(addr, &cancel);
    assert!(status.contains("200"), "{body}");
    assert!(
        body.contains(&format!("{{\"id\":{id},\"cancelled\":true}}")),
        "{body}"
    );

    // The caller gets a structured error naming who pulled the plug.
    let (status, text) = victim.join().expect("victim thread");
    assert!(status.contains("499"), "{text}");
    assert!(text.contains("cancelled by administrator"), "{text}");

    // The registry is empty again and the cancellation is counted.
    let (_, list) = raw_roundtrip(
        addr,
        "GET /queries HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
    );
    assert!(list.contains("\"queries\":[]"), "{list}");
    let text = stats(addr);
    assert!(json_u64(&text, "admin_cancelled") >= 1, "{text}");

    // An unknown id is a 404, not a silent no-op.
    let (status, _) = raw_roundtrip(
        addr,
        "POST /queries/999999/cancel HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\
         Content-Length: 0\r\n\r\n",
    );
    assert!(status.contains("404"), "{status}");
    front.shutdown();
}

#[test]
fn engine_panic_is_contained_to_one_connection() {
    let seed = chaos_seed();
    println!("LUSAIL_CHAOS_SEED={seed}");
    let (name, g) = &shards()[0];
    let faulty = Arc::new(FaultyEndpoint::with_config(
        Arc::new(SimulatedEndpoint::new(
            name.clone(),
            Store::from_graph(g),
            NetworkProfile::instant(),
        )),
        seed,
        FaultProfile::panics_on_select(),
        FaultyConfig::default(),
    ));
    let (service, front) = front_door(
        vec![Arc::clone(&faulty) as Arc<dyn SparqlEndpoint>],
        FederateConfig::default(),
    );
    let addr = front.local_addr();
    let query = "SELECT ?s WHERE { ?s <http://x/name> ?n }";

    // The panic is contained to this one request: a 500 JSON error, not
    // a dead server.
    let (status, text) = raw_roundtrip(addr, &get_request(query));
    assert!(status.contains("500"), "{text}");
    assert!(text.contains("panicked"), "{text}");

    // Heal the endpoint: the very same server keeps serving, and the
    // panicking query leaked nothing — its ledger and quota slot are
    // back, so admission still works at full capacity.
    faulty.set_faults(FaultProfile::none());
    let (status, text) = raw_roundtrip(addr, &get_request(query));
    assert!(status.contains("200"), "{text}");
    assert_eq!(service.pool().in_use(), 0, "no leaked ledger");
    assert!(service.pool().stats().peak_ledgers <= service.pool().max_ledgers());

    let text = stats(addr);
    assert!(json_u64(&text, "panics_contained") >= 1, "{text}");
    assert_eq!(json_u64(&text, "inflight"), 0, "{text}");
    front.shutdown();
}
