//! End-to-end tests for the federation service (`lusail serve
//! --federate`): real backend `lusail-server` processes on loopback
//! ports, a front-door service executing the full LADE/SAPE pipeline,
//! and raw HTTP clients on the other side.
//!
//! Covered here, mirroring the service's contract:
//! * parallel clients all receive exactly the single-shot answer;
//! * a repeated hot query is served from the shared result cache with
//!   **zero** outbound endpoint requests (asserted via the backends'
//!   request counters);
//! * a saturated admission pool sheds with 503 + `Retry-After`, never
//!   exceeds the configured ledger count, and keeps serving cached
//!   answers while saturated;
//! * one client cannot exceed its in-flight quota (429);
//! * chaos: a dead endpoint (chosen by `LUSAIL_CHAOS_SEED`) behind the
//!   service still yields partial results with warnings to the client.

use integration::{assert_same_solutions, ground_truth};
use lusail_cli::{start_federated_server, FederateOpts};
use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::{
    Federation, HttpEndpoint, NetworkProfile, SimulatedEndpoint, SparqlEndpoint,
};
use lusail_rdf::{Graph, Term};
use lusail_server::federate::{FederateConfig, FederationService};
use lusail_server::{ServerConfig, ServerHandle, SparqlServer};
use lusail_store::Store;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn chaos_seed() -> u64 {
    std::env::var("LUSAIL_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Three graphs whose answers require cross-endpoint joins: people on one
/// endpoint, advisor edges on another, departments on a third.
fn shards() -> Vec<(String, Graph)> {
    let mut people = Graph::new();
    let mut advisors = Graph::new();
    let mut depts = Graph::new();
    for i in 0..5 {
        people.add(
            Term::iri(format!("http://x/s{i}")),
            Term::iri("http://x/name"),
            Term::literal(format!("name-{i}")),
        );
    }
    for i in 0..3 {
        advisors.add(
            Term::iri(format!("http://x/s{i}")),
            Term::iri("http://x/advisor"),
            Term::iri(format!("http://x/a{i}")),
        );
        depts.add(
            Term::iri(format!("http://x/a{i}")),
            Term::iri("http://x/dept"),
            Term::iri(format!("http://x/d{}", i % 2)),
        );
    }
    vec![
        ("people".to_string(), people),
        ("advisors".to_string(), advisors),
        ("depts".to_string(), depts),
    ]
}

const QUERIES: &[&str] = &[
    "SELECT ?s ?n WHERE { ?s <http://x/name> ?n }",
    "SELECT ?s ?a WHERE { ?s <http://x/advisor> ?a }",
    "SELECT ?n ?d WHERE { ?s <http://x/name> ?n . ?s <http://x/advisor> ?a . \
     ?a <http://x/dept> ?d }",
];

/// One `lusail-server` per shard; returns the handles and their URLs.
fn backend_servers(graphs: &[(String, Graph)]) -> (Vec<ServerHandle>, Vec<String>) {
    let mut handles = Vec::new();
    let mut urls = Vec::new();
    for (_, g) in graphs {
        let server =
            SparqlServer::bind("127.0.0.1:0", Store::from_graph(g), ServerConfig::default())
                .expect("bind ephemeral port");
        let handle = server.spawn();
        urls.push(handle.url());
        handles.push(handle);
    }
    (handles, urls)
}

/// Raw one-shot HTTP exchange; returns (status line, full response text).
fn raw_roundtrip(addr: SocketAddr, request: &str) -> (String, String) {
    let mut sock = TcpStream::connect(addr).expect("connect");
    sock.write_all(request.as_bytes()).expect("send");
    let mut text = String::new();
    sock.read_to_string(&mut text).expect("read");
    let status = text.lines().next().unwrap_or("").to_string();
    (status, text)
}

fn get_request(query: &str) -> String {
    format!(
        "GET /sparql?query={} HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
        lusail_federation::http::percent_encode(query)
    )
}

/// Pull `"key":N` out of a flat JSON blob.
fn json_u64(text: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let start = text
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} in {text}"))
        + needle.len();
    text[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("numeric {key} in {text}"))
}

#[test]
fn parallel_clients_all_get_the_single_shot_answer() {
    let graphs = shards();
    let (backends, urls) = backend_servers(&graphs);
    let (front, endpoints) = start_federated_server(
        &[],
        "127.0.0.1:0",
        4,
        None,
        &FederateOpts {
            endpoints: urls,
            // Every loopback client shares the peer-IP identity; keep the
            // quota out of this test's way.
            client_max_inflight: Some(64),
            ..Default::default()
        },
    )
    .expect("front door starts");
    assert_eq!(endpoints, 3);

    // The single-shot reference: the same federation queried by one
    // in-process engine run per query (what `lusail query` would print).
    let sim_fed = {
        let eps: Vec<Arc<dyn SparqlEndpoint>> = graphs
            .iter()
            .map(|(name, g)| {
                Arc::new(SimulatedEndpoint::new(
                    name.clone(),
                    Store::from_graph(g),
                    NetworkProfile::instant(),
                )) as Arc<dyn SparqlEndpoint>
            })
            .collect();
        Federation::new(eps)
    };
    let single_shot = LusailEngine::new(sim_fed, LusailConfig::default());

    let front_url = front.url();
    std::thread::scope(|scope| {
        for client in 0..6 {
            let front_url = &front_url;
            let graphs = &graphs;
            let single_shot = &single_shot;
            scope.spawn(move || {
                let ep = HttpEndpoint::new(format!("client-{client}"), front_url)
                    .expect("valid front-door URL");
                for (qi, text) in QUERIES.iter().enumerate() {
                    let query = lusail_sparql::parse_query(text).expect("test query parses");
                    let via_service = ep.select(&query).expect("service answers");
                    assert_same_solutions(
                        &format!("client {client} q{qi} vs single-shot"),
                        &via_service,
                        &single_shot.execute(&query).expect("single-shot runs"),
                    );
                    assert_same_solutions(
                        &format!("client {client} q{qi} vs ground truth"),
                        &via_service,
                        &ground_truth(graphs, &query),
                    );
                }
            });
        }
    });
    front.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn hot_query_is_answered_with_zero_outbound_requests() {
    let graphs = shards();
    let (backends, urls) = backend_servers(&graphs);
    let (front, _) = start_federated_server(
        &[],
        "127.0.0.1:0",
        2,
        None,
        &FederateOpts {
            endpoints: urls,
            ..Default::default()
        },
    )
    .expect("front door starts");

    let ep = HttpEndpoint::new("client", &front.url()).expect("valid front-door URL");
    let query = lusail_sparql::parse_query(QUERIES[2]).expect("test query parses");
    let first = ep.select(&query).expect("cold query runs");
    assert!(!first.is_empty(), "the join must produce rows");

    // The acceptance bar: the repeat must not cost a single outbound
    // endpoint request — each backend's own counter stays frozen.
    let before: Vec<u64> = backends.iter().map(|b| b.requests_served()).collect();
    let second = ep.select(&query).expect("hot query runs");
    let after: Vec<u64> = backends.iter().map(|b| b.requests_served()).collect();
    assert_same_solutions("hot-vs-cold", &second, &first);
    assert_eq!(
        before, after,
        "a result-cache hit must reach no backend endpoint"
    );

    let (status, stats) = raw_roundtrip(
        front.local_addr(),
        "GET /stats HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
    );
    assert!(status.contains("200"), "{stats}");
    assert!(json_u64(&stats, "hits") >= 1, "{stats}");
    front.shutdown();
    for b in backends {
        b.shutdown();
    }
}

/// A service whose pool the test can drain directly: one ledger, no queue.
fn tiny_pool_service(latency: Duration) -> (Arc<FederationService>, lusail_server::ServerHandle) {
    let mut g = Graph::new();
    for i in 0..4 {
        g.add(
            Term::iri(format!("http://x/s{i}")),
            Term::iri("http://x/p"),
            Term::iri(format!("http://x/o{i}")),
        );
    }
    let ep = SimulatedEndpoint::new(
        "slowish",
        Store::from_graph(&g),
        NetworkProfile {
            latency,
            ..NetworkProfile::instant()
        },
    );
    let engine = LusailEngine::new(Federation::new(vec![Arc::new(ep)]), LusailConfig::default());
    let service = Arc::new(FederationService::new(
        engine,
        FederateConfig {
            pool_bytes: 4096,
            query_budget_bytes: 4096, // exactly one ledger
            max_waiting: 0,
            queue_timeout: Duration::from_millis(50),
            client_max_inflight: 1,
            ..Default::default()
        },
    ));
    let server = SparqlServer::with_backend(
        "127.0.0.1:0",
        Arc::clone(&service) as Arc<dyn lusail_server::QueryBackend>,
        ServerConfig::default(),
    )
    .expect("bind front door");
    (service, server.spawn())
}

#[test]
fn saturated_service_sheds_503_but_keeps_serving_cached_answers() {
    let (service, front) = tiny_pool_service(Duration::ZERO);
    let addr = front.local_addr();
    let hot = "SELECT ?s WHERE { ?s <http://x/p> ?o }";

    // Prime the result cache while the pool is healthy.
    let (status, _) = raw_roundtrip(addr, &get_request(hot));
    assert!(status.contains("200"), "{status}");

    // Drain the pool: hold its only ledger, as a long-running query would.
    let held = service.pool().try_carve().expect("the pool starts full");

    // A fresh query cannot be admitted: explicit shed, with Retry-After.
    let cold = "SELECT ?s WHERE { ?s <http://x/p> <http://x/o1> }";
    let (status, text) = raw_roundtrip(addr, &get_request(cold));
    assert!(status.contains("503"), "{text}");
    assert!(text.contains("Retry-After:"), "{text}");
    assert!(text.contains("service saturated"), "{text}");

    // …but the hot query still flows: cache hits never need a ledger.
    let (status, text) = raw_roundtrip(addr, &get_request(hot));
    assert!(
        status.contains("200"),
        "cached answer under saturation: {text}"
    );

    drop(held);
    // With the ledger back, the shed query is admitted and runs.
    let (status, _) = raw_roundtrip(addr, &get_request(cold));
    assert!(status.contains("200"), "{status}");

    // The pool invariant: ledgers outstanding never exceeded the pool.
    let stats = service.pool().stats();
    assert!(stats.shed >= 1);
    assert!(
        stats.peak_ledgers <= service.pool().max_ledgers(),
        "peak {} vs max {}",
        stats.peak_ledgers,
        service.pool().max_ledgers()
    );
    assert!(front.stats().shed >= 1, "the shed shows in server counters");
    front.shutdown();
}

#[test]
fn one_client_cannot_exceed_its_inflight_quota() {
    // A slow endpoint so the first query reliably holds its quota slot
    // while the second arrives (every loopback client shares the peer-IP
    // identity, and the quota is one in flight).
    let (_service, front) = tiny_pool_service(Duration::from_millis(200));
    let addr = front.local_addr();

    let slow = get_request("SELECT ?s WHERE { ?s <http://x/p> ?o }");
    let racer = std::thread::spawn(move || raw_roundtrip(addr, &slow).0);
    std::thread::sleep(Duration::from_millis(60));
    let (status, text) = raw_roundtrip(
        addr,
        &get_request("SELECT ?o WHERE { <http://x/s2> <http://x/p> ?o }"),
    );
    assert!(status.contains("429"), "{text}");
    assert!(text.contains("Retry-After:"), "{text}");
    assert!(text.contains("in flight"), "{text}");
    let first = racer.join().expect("racer thread");
    assert!(first.contains("200"), "{first}");
    assert!(front.stats().shed >= 1, "429s count as sheds");
    front.shutdown();
}

#[test]
fn dead_endpoint_still_yields_partial_results_with_warnings() {
    let graphs = shards();
    let (mut backends, mut urls) = backend_servers(&graphs);

    // The seed picks which endpoint dies; its port is bound then freed so
    // connections are refused outright.
    let victim = (chaos_seed() as usize) % urls.len();
    let dead_port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("probe port");
        l.local_addr().expect("probe addr").port()
    };
    backends.remove(victim).shutdown();
    urls[victim] = format!("http://127.0.0.1:{dead_port}/sparql");
    let live_graphs: Vec<(String, Graph)> = graphs
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != victim)
        .map(|(_, g)| g.clone())
        .collect();

    let (front, _) = start_federated_server(
        &[],
        "127.0.0.1:0",
        2,
        None,
        &FederateOpts {
            endpoints: urls,
            retries: Some(0),
            backoff: Some(1),
            partial: true,
            ..Default::default()
        },
    )
    .expect("front door starts");

    // A query that only needs the two survivors must answer exactly as if
    // the victim never existed — and the response head must say what was
    // skipped.
    let survivor_query = match victim {
        0 => "SELECT ?s ?a WHERE { ?s <http://x/advisor> ?a }",
        _ => "SELECT ?s ?n WHERE { ?s <http://x/name> ?n }",
    };
    let query = lusail_sparql::parse_query(survivor_query).expect("test query parses");
    let ep = HttpEndpoint::new("client", &front.url()).expect("valid front-door URL");
    let rel = ep.select(&query).expect("partial mode still answers");
    assert_same_solutions(
        &format!("partial-vs-live (victim {victim})"),
        &rel,
        &ground_truth(&live_graphs, &query),
    );
    assert!(!rel.is_empty(), "the survivors hold rows for this query");

    let (status, text) = raw_roundtrip(front.local_addr(), &get_request(survivor_query));
    assert!(status.contains("200"), "{text}");
    assert!(
        text.contains("\"warnings\""),
        "the degradation must be declared in the head: {text}"
    );
    assert!(text.contains("skipped"), "{text}");

    // Degraded answers are never cached: the repeat reaches the live
    // backends again instead of pinning the outage.
    let before: Vec<u64> = backends.iter().map(|b| b.requests_served()).collect();
    let _ = ep.select(&query).expect("repeat still answers");
    let after: Vec<u64> = backends.iter().map(|b| b.requests_served()).collect();
    assert_ne!(
        before, after,
        "a warned result must not be served from the cache"
    );

    front.shutdown();
    for b in backends {
        b.shutdown();
    }
}
