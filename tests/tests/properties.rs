//! Property-style tests over the core data structures and the federated
//! evaluation pipeline.
//!
//! These were originally `proptest` strategies; they are now seeded-loop
//! generators over the in-tree [`SplitMix64`] PRNG (the offline build has
//! no crates.io access). Each test fixes a base seed and derives one seed
//! per case, so failures reproduce exactly: re-run the named test and the
//! failing case number printed in the assertion message identifies the
//! input. The shrunk counterexamples proptest found historically (the old
//! `properties.proptest-regressions` seeds) are pinned as the explicit
//! `regression_*` tests at the bottom.

use integration::{assert_same_solutions, ground_truth};
use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::NetworkProfile;
use lusail_rdf::{Dictionary, Graph, Term};
use lusail_sparql::ast::{
    Expression, GraphPattern, Projection, Query, SelectQuery, TermPattern, TriplePattern, Variable,
};
use lusail_sparql::solution::Relation;
use lusail_sparql::{parse_query, serializer::serialize_query};
use lusail_workloads::federation_from_graphs;
use lusail_workloads::prng::SplitMix64;

// ---- small generators --------------------------------------------------

fn gen_iri(rng: &mut SplitMix64) -> Term {
    let e = rng.gen_range(0..12usize);
    let ns = rng.gen_range(0..6usize);
    Term::iri(format!("http://ns{ns}.example.org/e{e}"))
}

fn gen_lowercase(rng: &mut SplitMix64, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u32) as u8) as char)
        .collect()
}

fn gen_literal(rng: &mut SplitMix64) -> Term {
    if rng.gen_bool(0.5) {
        Term::literal(gen_lowercase(rng, 8))
    } else {
        Term::integer(rng.gen_range(-50..50))
    }
}

/// 3:1 IRIs to literals, like the original `prop_oneof!` weights.
fn gen_term(rng: &mut SplitMix64) -> Term {
    if rng.gen_range(0..4u32) < 3 {
        gen_iri(rng)
    } else {
        gen_literal(rng)
    }
}

fn gen_predicate(rng: &mut SplitMix64) -> Term {
    Term::iri(format!(
        "http://vocab.example.org/p{}",
        rng.gen_range(0..5usize)
    ))
}

/// Subjects are namespaced per endpoint (`ep`): each endpoint owns its
/// subjects, as in real decentralized RDF, so no triple is replicated
/// across endpoints. (With replication, a federation correctly returns
/// the triple once *per holding endpoint* — bag semantics — while the
/// merged ground-truth store deduplicates; see the
/// `duplicate_triples_across_endpoints_preserve_bag_semantics` edge-case
/// test for that behaviour.)
fn gen_triple(rng: &mut SplitMix64, ep: usize) -> lusail_rdf::Triple {
    lusail_rdf::Triple {
        subject: Term::iri(format!(
            "http://ep{ep}.example.org/e{}",
            rng.gen_range(0..12usize)
        )),
        predicate: gen_predicate(rng),
        object: gen_term(rng),
    }
}

fn gen_graph_for(rng: &mut SplitMix64, ep: usize, max: usize) -> Graph {
    let n = rng.gen_range(1..max);
    (0..n).map(|_| gen_triple(rng, ep)).collect()
}

/// A connected chain BGP: ?v0 p ?v1 . ?v1 p ?v2 . … (sometimes with a
/// constant object at the end).
fn gen_chain_query(rng: &mut SplitMix64) -> Query {
    let links = rng.gen_range(1..4usize);
    let mut tps = Vec::new();
    for i in 0..links {
        let subj = TermPattern::var(format!("v{i}"));
        let obj = TermPattern::var(format!("v{}", i + 1));
        let pred = TermPattern::iri(format!(
            "http://vocab.example.org/p{}",
            rng.gen_range(0..5usize)
        ));
        tps.push(if rng.gen_bool(0.5) {
            TriplePattern::new(obj, pred, subj)
        } else {
            TriplePattern::new(subj, pred, obj)
        });
    }
    if rng.gen_bool(0.5) {
        let t = gen_term(rng);
        let last = tps.len();
        tps.push(TriplePattern::new(
            TermPattern::var(format!("v{last}")),
            TermPattern::iri("http://vocab.example.org/p0"),
            TermPattern::Term(t),
        ));
    }
    Query::select(SelectQuery::new(Projection::All, GraphPattern::Bgp(tps)))
}

/// A richer query: a chain BGP, optionally extended with an OPTIONAL
/// block, a numeric FILTER, a UNION arm, or a BIND.
fn gen_rich_query(rng: &mut SplitMix64) -> Query {
    let links = rng.gen_range(1..3usize);
    let mut tps = Vec::new();
    for i in 0..links {
        let subj = TermPattern::var(format!("v{i}"));
        let obj = TermPattern::var(format!("v{}", i + 1));
        let pred = TermPattern::iri(format!(
            "http://vocab.example.org/p{}",
            rng.gen_range(0..5usize)
        ));
        tps.push(if rng.gen_bool(0.5) {
            TriplePattern::new(obj, pred, subj)
        } else {
            TriplePattern::new(subj, pred, obj)
        });
    }
    let mut pattern = GraphPattern::Bgp(tps);
    if rng.gen_bool(0.5) {
        let p = rng.gen_range(0..5usize);
        let opt = GraphPattern::Bgp(vec![TriplePattern::new(
            TermPattern::var("v0"),
            TermPattern::iri(format!("http://vocab.example.org/p{p}")),
            TermPattern::var("opt"),
        )]);
        pattern = GraphPattern::LeftJoin(Box::new(pattern), Box::new(opt));
    }
    if rng.gen_bool(0.5) {
        let p = rng.gen_range(0..5usize);
        let arm = GraphPattern::Bgp(vec![TriplePattern::new(
            TermPattern::var("v0"),
            TermPattern::iri(format!("http://vocab.example.org/p{p}")),
            TermPattern::var("u"),
        )]);
        pattern = GraphPattern::Union(Box::new(pattern), Box::new(arm));
    }
    if rng.gen_bool(0.5) {
        pattern = GraphPattern::Bind(
            Box::new(pattern),
            Expression::Str(Box::new(Expression::Var(Variable::new("v0")))),
            Variable::new("bound"),
        );
    }
    if rng.gen_bool(0.5) {
        let b = rng.gen_range(-20..20i64);
        pattern = GraphPattern::Filter(
            Box::new(pattern),
            Expression::Or(
                Box::new(Expression::Gt(
                    Box::new(Expression::Var(Variable::new("v1"))),
                    Box::new(Expression::Term(Term::integer(b))),
                )),
                Box::new(Expression::Not(Box::new(Expression::Bound(Variable::new(
                    "v1",
                ))))),
            ),
        );
    }
    Query::select(SelectQuery::new(Projection::All, pattern))
}

/// Derive one PRNG per case from a test-specific base seed.
fn case_rng(base: u64, case: usize) -> SplitMix64 {
    SplitMix64::seed_from_u64(base.wrapping_mul(0x9E37_79B9).wrapping_add(case as u64))
}

fn paranoid_engine(graphs: &[(String, Graph)]) -> LusailEngine {
    // Arbitrary graphs may repeat instances across endpoints (§3.3 Case 2),
    // so the sound paranoid-locality mode is required for exact
    // merged-store equality; the default mode is exercised by the
    // benchmark-workload integration tests, whose data satisfies the
    // paper's endpoint-exclusivity assumption.
    LusailEngine::new(
        federation_from_graphs(graphs.to_vec(), NetworkProfile::instant()),
        LusailConfig {
            threads: Some(2),
            paranoid_locality: true,
            ..Default::default()
        },
    )
}

// ---- properties ---------------------------------------------------------

/// The paper's correctness claim, fuzzed: on arbitrary decentralized
/// graphs, Lusail's answer equals evaluating the merged graph.
#[test]
fn lusail_equals_merged_store_on_random_federations() {
    for case in 0..24 {
        let rng = &mut case_rng(0xFED0, case);
        let graphs = vec![
            ("ep0".to_string(), gen_graph_for(rng, 0, 30)),
            ("ep1".to_string(), gen_graph_for(rng, 1, 30)),
            ("ep2".to_string(), gen_graph_for(rng, 2, 20)),
        ];
        let query = gen_chain_query(rng);
        let actual = paranoid_engine(&graphs).execute(&query).unwrap();
        let expected = ground_truth(&graphs, &query);
        assert_same_solutions(
            &format!("random federation (case {case})"),
            &actual,
            &expected,
        );
    }
}

/// Rich query shapes (OPTIONAL / UNION / FILTER / BIND) on random
/// federations still match the merged-store ground truth.
#[test]
fn lusail_rich_queries_match_ground_truth() {
    for case in 0..16 {
        let rng = &mut case_rng(0xFED1, case);
        let graphs = vec![
            ("ep0".to_string(), gen_graph_for(rng, 0, 25)),
            ("ep1".to_string(), gen_graph_for(rng, 1, 25)),
        ];
        let query = gen_rich_query(rng);
        let actual = paranoid_engine(&graphs).execute(&query).unwrap();
        let expected = ground_truth(&graphs, &query);
        assert_same_solutions(
            &format!("rich random federation (case {case})"),
            &actual,
            &expected,
        );
    }
}

/// Serializer/parser round trip on generated queries.
#[test]
fn query_roundtrip() {
    for case in 0..64 {
        let rng = &mut case_rng(0xFED2, case);
        let query = gen_chain_query(rng);
        let text = serialize_query(&query);
        let reparsed = parse_query(&text).unwrap();
        assert_eq!(query, reparsed, "case {case}: {text}");
    }
}

/// Dictionary encode/decode is a bijection on interned terms.
#[test]
fn dictionary_roundtrip() {
    for case in 0..64 {
        let rng = &mut case_rng(0xFED3, case);
        let terms: Vec<Term> = (0..rng.gen_range(1..50usize))
            .map(|_| gen_term(rng))
            .collect();
        let mut dict = Dictionary::new();
        let ids: Vec<_> = terms.iter().map(|t| dict.encode(t)).collect();
        for (t, id) in terms.iter().zip(&ids) {
            assert_eq!(dict.decode(*id), t, "case {case}");
            assert_eq!(dict.get(t), Some(*id), "case {case}");
        }
        // Distinct terms get distinct ids.
        let mut unique: Vec<&Term> = Vec::new();
        for t in &terms {
            if !unique.contains(&t) {
                unique.push(t);
            }
        }
        assert_eq!(dict.len(), unique.len(), "case {case}");
    }
}

/// N-Triples serialize/parse round trip.
#[test]
fn ntriples_roundtrip() {
    for case in 0..64 {
        let rng = &mut case_rng(0xFED4, case);
        let g = gen_graph_for(rng, 0, 40);
        let text = lusail_rdf::ntriples::serialize(&g);
        let back = lusail_rdf::ntriples::parse(&text).unwrap();
        assert_eq!(g.triples(), back.triples(), "case {case}");
    }
}

/// Join row counts are symmetric, and every output row is compatible
/// with the shared variables.
#[test]
fn join_is_symmetric_in_cardinality() {
    let v = |n: &str| Variable::new(n);
    let t = |i: u32| Term::integer(i as i64);
    for case in 0..64 {
        let rng = &mut case_rng(0xFED5, case);
        let mut a = Relation::new(vec![v("x"), v("y")]);
        for _ in 0..rng.gen_range(0..20usize) {
            a.push(vec![
                Some(t(rng.gen_range(0..6u32))),
                Some(t(rng.gen_range(0..6u32))),
            ]);
        }
        let mut b = Relation::new(vec![v("y"), v("z")]);
        for _ in 0..rng.gen_range(0..20usize) {
            b.push(vec![
                Some(t(rng.gen_range(0..6u32))),
                Some(t(rng.gen_range(0..6u32))),
            ]);
        }
        let ab = a.join(&b);
        let ba = b.join(&a);
        assert_eq!(ab.len(), ba.len(), "case {case}");
        let yi = ab.index_of(&v("y")).unwrap();
        for row in ab.rows() {
            assert!(row[yi].is_some(), "case {case}");
        }
    }
}

/// Left join never loses left rows.
#[test]
fn left_join_preserves_left_cardinality_lower_bound() {
    let v = |n: &str| Variable::new(n);
    let t = |i: u32| Term::integer(i as i64);
    for case in 0..64 {
        let rng = &mut case_rng(0xFED6, case);
        let xs: Vec<u32> = (0..rng.gen_range(1..15usize))
            .map(|_| rng.gen_range(0..6u32))
            .collect();
        let mut a = Relation::new(vec![v("x")]);
        for x in &xs {
            a.push(vec![Some(t(*x))]);
        }
        let mut b = Relation::new(vec![v("x"), v("z")]);
        for _ in 0..rng.gen_range(0..15usize) {
            b.push(vec![
                Some(t(rng.gen_range(0..6u32))),
                Some(t(rng.gen_range(0..6u32))),
            ]);
        }
        let lj = a.left_join(&b);
        assert!(lj.len() >= a.len(), "case {case}");
        // Every left value appears in the output.
        let xi = lj.index_of(&v("x")).unwrap();
        for x in &xs {
            assert!(
                lj.rows().iter().any(|r| r[xi] == Some(t(*x))),
                "case {case}"
            );
        }
    }
}

/// q-error is always ≥ 1 (or infinite) and symmetric.
#[test]
fn q_error_properties() {
    for case in 0..256 {
        let rng = &mut case_rng(0xFED7, case);
        let e = rng.gen_range(0..1000usize);
        let a = rng.gen_range(0..1000usize);
        let q = lusail_core::sape::q_error(e, a);
        assert!(q >= 1.0, "case {case}: q_error({e}, {a}) = {q}");
        assert_eq!(q, lusail_core::sape::q_error(a, e), "case {case}");
    }
}

/// Chauvenet never rejects points of a constant sample, and the
/// cleaned mean lies within the sample range.
#[test]
fn chauvenet_sanity() {
    for case in 0..64 {
        let rng = &mut case_rng(0xFED8, case);
        let xs: Vec<f64> = (0..rng.gen_range(3..40usize))
            .map(|_| rng.gen_range(0.0..1e6f64))
            .collect();
        let outliers = lusail_core::sape::stats::chauvenet_outliers(&xs);
        assert_eq!(outliers.len(), xs.len(), "case {case}");
        let kept: Vec<f64> = xs
            .iter()
            .zip(&outliers)
            .filter(|(_, &o)| !o)
            .map(|(&x, _)| x)
            .collect();
        assert!(
            !kept.is_empty(),
            "case {case}: Chauvenet must not reject everything"
        );
        let (mu, _) = lusail_core::sape::stats::clean_mean_std(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            mu >= min && mu <= max,
            "case {case}: mean {mu} outside [{min}, {max}]"
        );
    }
}

/// The tiny regex engine agrees with plain substring search on
/// metacharacter-free patterns.
#[test]
fn regex_matches_contains_for_plain_patterns() {
    for case in 0..256 {
        let rng = &mut case_rng(0xFED9, case);
        let mut pat = gen_lowercase(rng, 6);
        if pat.is_empty() {
            pat.push('a');
        }
        let text = gen_lowercase(rng, 24);
        let re = lusail_store::regex_lite::Regex::new(&pat, "").unwrap();
        assert_eq!(
            re.is_match(&text),
            text.contains(&pat),
            "case {case}: /{pat}/ on {text:?}"
        );
    }
}

/// FILTER expression evaluation is deterministic and total (never
/// panics) on arbitrary comparison expressions over integers.
#[test]
fn expressions_are_total() {
    use lusail_store::expr::{eval_ebv, ExprContext};
    struct Ctx(i64, i64);
    impl ExprContext for Ctx {
        fn value_of(&self, v: &Variable) -> Option<Term> {
            match v.name() {
                "x" => Some(Term::integer(self.0)),
                "y" => Some(Term::integer(self.1)),
                _ => None,
            }
        }
        fn exists(&mut self, _p: &GraphPattern) -> bool {
            false
        }
    }
    for case in 0..256 {
        let rng = &mut case_rng(0xFEDA, case);
        let x = rng.gen_range(-100..100i64);
        let y = rng.gen_range(-100..100i64);
        let op = rng.gen_range(0..6u32);
        let lhs = Box::new(Expression::Var(Variable::new("x")));
        let rhs = Box::new(Expression::Var(Variable::new("y")));
        let e = match op {
            0 => Expression::Eq(lhs, rhs),
            1 => Expression::Ne(lhs, rhs),
            2 => Expression::Lt(lhs, rhs),
            3 => Expression::Le(lhs, rhs),
            4 => Expression::Gt(lhs, rhs),
            _ => Expression::Ge(lhs, rhs),
        };
        let expected = match op {
            0 => x == y,
            1 => x != y,
            2 => x < y,
            3 => x <= y,
            4 => x > y,
            _ => x >= y,
        };
        assert_eq!(
            eval_ebv(&e, &mut Ctx(x, y)),
            expected,
            "case {case}: op {op} on ({x}, {y})"
        );
    }
}

// ---- hostile-input fuzzing ----------------------------------------------
//
// The federation layer parses bytes that arrive off the wire from
// endpoints it does not control. These seeded byte-mutation loops prove
// the JSON and results parsers are total: any outcome is fine except a
// panic (or unbounded memory, covered by the streaming cap tests).

/// A well-formed SPARQL results document to mutate, exercising every
/// term shape the serializer can emit (IRI, plain/typed/tagged literal,
/// unbound cells, escapes).
fn seed_results_document(rng: &mut SplitMix64) -> String {
    let mut doc = String::from("{\"head\":{\"vars\":[\"s\",\"o\"]},\"results\":{\"bindings\":[");
    let rows = rng.gen_range(1..6usize);
    for i in 0..rows {
        if i > 0 {
            doc.push(',');
        }
        let o = match rng.gen_range(0..4u32) {
            0 => format!(
                "{{\"type\":\"literal\",\"value\":\"{}\"}}",
                gen_lowercase(rng, 6)
            ),
            1 => format!(
                "{{\"type\":\"literal\",\"value\":\"{}\",\"datatype\":\
                 \"http://www.w3.org/2001/XMLSchema#integer\"}}",
                rng.gen_range(0..99u32)
            ),
            2 => "{\"type\":\"literal\",\"value\":\"caf\\u00e9 \\\"q\\\" \
                  \\uD83D\\uDE00\",\"xml:lang\":\"en\"}"
                .to_string(),
            _ => format!(
                "{{\"type\":\"uri\",\"value\":\"http://x.example.org/{}\"}}",
                gen_lowercase(rng, 5)
            ),
        };
        doc.push_str(&format!(
            "{{\"s\":{{\"type\":\"uri\",\"value\":\"http://x.example.org/s{i}\"}},\
             \"o\":{o}}}"
        ));
    }
    doc.push_str("]}}");
    doc
}

/// Apply one of four byte-level corruptions: truncate, flip bytes,
/// insert noise, or splice a chunk from elsewhere in the document.
fn mutate_bytes(rng: &mut SplitMix64, bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        return;
    }
    match rng.gen_range(0..4u32) {
        0 => {
            let at = rng.gen_range(0..bytes.len());
            bytes.truncate(at);
        }
        1 => {
            for _ in 0..rng.gen_range(1..8usize) {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = rng.gen_range(0..256u32) as u8;
            }
        }
        2 => {
            let at = rng.gen_range(0..=bytes.len());
            let noise: Vec<u8> = (0..rng.gen_range(1..12usize))
                .map(|_| rng.gen_range(0..256u32) as u8)
                .collect();
            bytes.splice(at..at, noise);
        }
        _ => {
            let from = rng.gen_range(0..bytes.len());
            let len = rng.gen_range(1..=(bytes.len() - from).min(16));
            let chunk: Vec<u8> = bytes[from..from + len].to_vec();
            let at = rng.gen_range(0..=bytes.len());
            bytes.splice(at..at, chunk);
        }
    }
}

/// Results parsers (DOM, DOM-with-warnings, and the streaming capped
/// parser) never panic on arbitrarily corrupted documents, and agree on
/// acceptance: any document the DOM parser accepts, the streaming parser
/// accepts too.
#[test]
fn results_json_parsers_are_total_on_mutated_bytes() {
    use lusail_federation::results_json;
    for case in 0..512 {
        let rng = &mut case_rng(0xFEDB, case);
        let mut bytes = seed_results_document(rng).into_bytes();
        for _ in 0..rng.gen_range(1..4usize) {
            mutate_bytes(rng, &mut bytes);
        }
        // Exercise the streaming parser on raw (possibly non-UTF-8)
        // bytes, and the &str entry points on the lossy decoding.
        let cap = [None, Some(0), Some(2)][case % 3];
        let _ = results_json::parse_stream(&bytes[..], cap);
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let dom = results_json::parse(&text);
        let full = results_json::parse_full(&text);
        let streamed = results_json::parse_capped(&text, None);
        assert_eq!(dom.is_ok(), full.is_ok(), "case {case}: {text:?}");
        if let (Ok(dom), Ok(streamed)) = (&dom, &streamed) {
            assert_eq!(dom, &streamed.result, "case {case}: {text:?}");
        }
    }
}

/// The generic JSON parser never panics on mutated documents or raw
/// garbage.
#[test]
fn json_parser_is_total_on_mutated_bytes() {
    use lusail_federation::json::Json;
    for case in 0..512 {
        let rng = &mut case_rng(0xFEDC, case);
        let mut bytes = if rng.gen_bool(0.5) {
            seed_results_document(rng).into_bytes()
        } else {
            (0..rng.gen_range(1..120usize))
                .map(|_| rng.gen_range(0..256u32) as u8)
                .collect()
        };
        for _ in 0..rng.gen_range(0..4usize) {
            mutate_bytes(rng, &mut bytes);
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = Json::parse(&text);
    }
}

/// Degenerate nesting must be rejected with an error, not a stack
/// overflow: both parsers cap recursion depth.
#[test]
fn deeply_nested_input_errors_instead_of_overflowing() {
    use lusail_federation::json::Json;
    use lusail_federation::results_json;
    // 65 is the first depth past both parsers' MAX_DEPTH of 64.
    for depth in [65usize, 512, 100_000] {
        let deep = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(Json::parse(&deep).is_err(), "depth {depth}");
        // An unknown head member forces the streaming parser down its
        // depth-capped skip_value path.
        let doc = format!(
            "{{\"head\":{{\"junk\":{deep},\"vars\":[]}},\
             \"results\":{{\"bindings\":[]}}}}"
        );
        assert!(
            results_json::parse_capped(&doc, None).is_err(),
            "depth {depth}"
        );
        let mixed = format!("{}\"x\"{}", "{\"k\":[".repeat(depth), "]}".repeat(depth));
        assert!(Json::parse(&mixed).is_err(), "depth {depth}");
    }
}

// ---- pinned regressions -------------------------------------------------
//
// Shrunk counterexamples proptest found historically, preserved as exact
// deterministic inputs (formerly `properties.proptest-regressions`).

fn iri(s: &str) -> Term {
    Term::iri(s)
}

fn triple(s: &str, p: &str, o: &str) -> lusail_rdf::Triple {
    lusail_rdf::Triple {
        subject: iri(s),
        predicate: iri(p),
        object: iri(o),
    }
}

fn run_regression(graphs: Vec<(String, Graph)>, query: Query, label: &str) {
    let actual = paranoid_engine(&graphs).execute(&query).unwrap();
    let expected = ground_truth(&graphs, &query);
    assert_same_solutions(label, &actual, &expected);
}

/// The same triple held at two endpoints: under SPARQL bag semantics the
/// federation returns it once *per holding endpoint* (the merged store
/// would deduplicate — these inputs predate the per-endpoint subject
/// namespacing of the random generator, so they pin the bag behaviour).
#[test]
fn regression_replicated_triple_across_endpoints() {
    let g1: Graph = [triple(
        "http://ns0.example.org/e0",
        "http://vocab.example.org/p4",
        "http://ns2.example.org/e2",
    )]
    .into_iter()
    .collect();
    let g2: Graph = [triple(
        "http://ns0.example.org/e0",
        "http://vocab.example.org/p0",
        "http://ns0.example.org/e0",
    )]
    .into_iter()
    .collect();
    let g3: Graph = [triple(
        "http://ns0.example.org/e0",
        "http://vocab.example.org/p4",
        "http://ns2.example.org/e2",
    )]
    .into_iter()
    .collect();
    let query = Query::select(SelectQuery::new(
        Projection::All,
        GraphPattern::Bgp(vec![TriplePattern::new(
            TermPattern::var("v1"),
            TermPattern::iri("http://vocab.example.org/p4"),
            TermPattern::var("v0"),
        )]),
    ));
    let graphs = vec![
        ("ep0".to_string(), g1),
        ("ep1".to_string(), g2),
        ("ep2".to_string(), g3),
    ];
    let actual = paranoid_engine(&graphs).execute(&query).unwrap();
    // One row per endpoint holding the `e0 p4 e2` triple (ep0 and ep2).
    assert_eq!(
        actual.len(),
        2,
        "bag semantics: one solution per holding endpoint"
    );
    let v1 = actual.index_of(&Variable::new("v1")).unwrap();
    let v0 = actual.index_of(&Variable::new("v0")).unwrap();
    for row in actual.rows() {
        assert_eq!(row[v1], Some(iri("http://ns0.example.org/e0")));
        assert_eq!(row[v0], Some(iri("http://ns2.example.org/e2")));
    }
}

/// BIND over a LEFT JOIN with the required pattern replicated at two
/// endpoints: like the test above, the federation answers once per
/// holding endpoint under bag semantics.
#[test]
fn regression_bind_over_left_join() {
    let g1: Graph = [triple(
        "http://ns5.example.org/e6",
        "http://vocab.example.org/p2",
        "http://ns4.example.org/e3",
    )]
    .into_iter()
    .collect();
    let g2: Graph = [
        triple(
            "http://ns0.example.org/e0",
            "http://vocab.example.org/p0",
            "http://ns4.example.org/e3",
        ),
        triple(
            "http://ns5.example.org/e6",
            "http://vocab.example.org/p2",
            "http://ns4.example.org/e3",
        ),
    ]
    .into_iter()
    .collect();
    let pattern = GraphPattern::Bind(
        Box::new(GraphPattern::LeftJoin(
            Box::new(GraphPattern::Bgp(vec![TriplePattern::new(
                TermPattern::var("v0"),
                TermPattern::iri("http://vocab.example.org/p2"),
                TermPattern::var("v1"),
            )])),
            Box::new(GraphPattern::Bgp(vec![TriplePattern::new(
                TermPattern::var("v0"),
                TermPattern::iri("http://vocab.example.org/p4"),
                TermPattern::var("opt"),
            )])),
        )),
        Expression::Str(Box::new(Expression::Var(Variable::new("v0")))),
        Variable::new("bound"),
    );
    let graphs = vec![("ep0".to_string(), g1), ("ep1".to_string(), g2)];
    let query = Query::select(SelectQuery::new(Projection::All, pattern));
    let actual = paranoid_engine(&graphs).execute(&query).unwrap();
    // `e6 p2 e3` is held at both endpoints; neither has a `p4` match, so
    // both rows keep `?opt` unbound and BIND stringifies the subject.
    assert_eq!(
        actual.len(),
        2,
        "bag semantics: one solution per holding endpoint"
    );
    let idx = |n: &str| actual.index_of(&Variable::new(n)).unwrap();
    for row in actual.rows() {
        assert_eq!(row[idx("v0")], Some(iri("http://ns5.example.org/e6")));
        assert_eq!(row[idx("v1")], Some(iri("http://ns4.example.org/e3")));
        assert_eq!(row[idx("opt")], None);
        assert_eq!(
            row[idx("bound")],
            Some(Term::literal("http://ns5.example.org/e6"))
        );
    }
}

/// A three-pattern star whose join crosses all three endpoints: two
/// patterns share `?v1`, the third shares `?v2` with the second.
#[test]
fn regression_cross_endpoint_star_join() {
    let g1: Graph = [
        triple(
            "http://ep0.example.org/e7",
            "http://vocab.example.org/p2",
            "http://ns0.example.org/e0",
        ),
        triple(
            "http://ep0.example.org/e7",
            "http://vocab.example.org/p0",
            "http://ns2.example.org/e11",
        ),
    ]
    .into_iter()
    .collect();
    let g2: Graph = [triple(
        "http://ep1.example.org/e0",
        "http://vocab.example.org/p0",
        "http://ns0.example.org/e0",
    )]
    .into_iter()
    .collect();
    let g3: Graph = [triple(
        "http://ep2.example.org/e0",
        "http://vocab.example.org/p0",
        "http://ns2.example.org/e11",
    )]
    .into_iter()
    .collect();
    let query = Query::select(SelectQuery::new(
        Projection::All,
        GraphPattern::Bgp(vec![
            TriplePattern::new(
                TermPattern::var("v0"),
                TermPattern::iri("http://vocab.example.org/p0"),
                TermPattern::var("v1"),
            ),
            TriplePattern::new(
                TermPattern::var("v2"),
                TermPattern::iri("http://vocab.example.org/p0"),
                TermPattern::var("v1"),
            ),
            TriplePattern::new(
                TermPattern::var("v2"),
                TermPattern::iri("http://vocab.example.org/p2"),
                TermPattern::var("v3"),
            ),
        ]),
    ));
    run_regression(
        vec![("ep0".into(), g1), ("ep1".into(), g2), ("ep2".into(), g3)],
        query,
        "regression: cross-endpoint star join",
    );
}

// ---- binary results codec ----------------------------------------------
//
// The binary interchange codec must be a drop-in replacement for SPARQL
// JSON: whatever a JSON round-trip preserves, the binary round-trip must
// preserve byte-for-byte equal, and its decoder must be as total as the
// JSON parsers under hostile bytes.

/// Any term shape the wire can carry: IRIs, blank nodes, plain, typed,
/// and language-tagged literals — with escapes and non-ASCII mixed in.
fn gen_wire_term(rng: &mut SplitMix64) -> Term {
    match rng.gen_range(0..6u32) {
        0 => Term::iri(format!(
            "http://ns{}.example.org/e{}",
            rng.gen_range(0..6u32),
            rng.gen_range(0..40u32)
        )),
        1 => Term::bnode(format!("b{}", rng.gen_range(0..9u32))),
        2 => Term::literal(format!(
            "caf\u{e9} \"{}\" \u{1F600}\n",
            gen_lowercase(rng, 5)
        )),
        3 => Term::integer(rng.gen_range(-99..99)),
        4 => Term::Literal(lusail_rdf::Literal::typed(
            gen_lowercase(rng, 8),
            format!("http://types.example.org/t{}", rng.gen_range(0..4u32)),
        )),
        _ => Term::Literal(lusail_rdf::Literal {
            lexical: gen_lowercase(rng, 8),
            datatype: None,
            language: Some("en-US".into()),
        }),
    }
}

/// A relation with arbitrary wire terms and unbound cells.
fn gen_wire_relation(rng: &mut SplitMix64) -> Relation {
    let arity = rng.gen_range(1..5usize);
    let vars: Vec<Variable> = (0..arity).map(|i| Variable::new(format!("v{i}"))).collect();
    let mut rel = Relation::new(vars);
    for _ in 0..rng.gen_range(0..12usize) {
        rel.push(
            (0..arity)
                .map(|_| rng.gen_bool(0.8).then(|| gen_wire_term(rng)))
                .collect(),
        );
    }
    rel
}

/// Round trip through the binary codec ≡ round trip through SPARQL JSON,
/// for arbitrary relations (and booleans): same solutions, same warnings,
/// and the binary decoder reports the true dictionary size.
#[test]
fn binary_codec_roundtrip_matches_json() {
    use lusail_federation::{results_bin, results_json};
    use lusail_store::eval::QueryResult;
    for case in 0..256 {
        let rng = &mut case_rng(0xB14A, case);
        let result = if case % 16 == 0 {
            QueryResult::Boolean(rng.gen_bool(0.5))
        } else {
            QueryResult::Solutions(gen_wire_relation(rng))
        };
        let warnings: Vec<String> = (0..rng.gen_range(0..3usize))
            .map(|i| format!("warning {i}: {}", gen_lowercase(rng, 6)))
            .collect();

        let bin = results_bin::serialize_with_warnings(&result, &warnings);
        let decoded = results_bin::parse(&bin).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(decoded.result, result, "case {case}: binary round trip");
        if matches!(result, QueryResult::Solutions(_)) {
            // ASK documents carry no warnings in either codec.
            assert_eq!(decoded.warnings, warnings, "case {case}: warnings");
        }
        assert!(!decoded.truncated, "case {case}: spurious truncation");

        let json = results_json::serialize(&result);
        let via_json = results_json::parse(&json).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(
            decoded.result, via_json,
            "case {case}: binary and JSON decodes disagree"
        );

        // The decoder's dictionary size must match the encoder's: every
        // distinct term shipped exactly once.
        if let QueryResult::Solutions(rel) = &result {
            let mut enc = results_bin::Encoder::new();
            enc.head(rel.vars(), &warnings);
            for row in rel.rows() {
                enc.row(row);
            }
            assert_eq!(
                decoded.dict_terms,
                enc.dict_terms(),
                "case {case}: dict size"
            );
        }
    }
}

/// The binary decoder is total on corrupted documents: truncations, bit
/// flips, splices, and inserted noise yield `Err` (or a shorter decode),
/// never a panic — mirroring the JSON parsers' treatment above. Row caps
/// must hold on corrupted documents too.
#[test]
fn binary_decoder_is_total_on_mutated_bytes() {
    use lusail_federation::results_bin;
    use lusail_store::eval::QueryResult;
    for case in 0..512 {
        let rng = &mut case_rng(0xB14B, case);
        let mut bytes = if rng.gen_bool(0.9) {
            results_bin::serialize(&QueryResult::Solutions(gen_wire_relation(rng)))
        } else {
            (0..rng.gen_range(1..120usize))
                .map(|_| rng.gen_range(0..256u32) as u8)
                .collect()
        };
        for _ in 0..rng.gen_range(1..4usize) {
            mutate_bytes(rng, &mut bytes);
        }
        let cap = [None, Some(0), Some(2)][case % 3];
        if let Ok(streamed) = results_bin::parse_stream(&bytes[..], cap) {
            if let (Some(cap), QueryResult::Solutions(rel)) = (cap, &streamed.result) {
                assert!(rel.len() <= cap, "case {case}: row cap exceeded");
            }
        }
    }
}
