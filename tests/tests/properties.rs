//! Property-based tests over the core data structures and the federated
//! evaluation pipeline.

use integration::{assert_same_solutions, ground_truth};
use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::NetworkProfile;
use lusail_rdf::{Dictionary, Graph, Term};
use lusail_sparql::ast::{
    Expression, GraphPattern, Projection, Query, SelectQuery, TermPattern, TriplePattern,
    Variable,
};
use lusail_sparql::solution::Relation;
use lusail_sparql::{parse_query, serializer::serialize_query};
use lusail_workloads::federation_from_graphs;
use proptest::prelude::*;

// ---- small strategies --------------------------------------------------

fn arb_iri() -> impl Strategy<Value = Term> {
    (0usize..12, 0usize..6).prop_map(|(e, ns)| Term::iri(format!("http://ns{ns}.example.org/e{e}")))
}

fn arb_literal() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[a-z]{0,8}".prop_map(Term::literal),
        (-50i64..50).prop_map(Term::integer),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![3 => arb_iri(), 1 => arb_literal()]
}

fn arb_predicate() -> impl Strategy<Value = Term> {
    (0usize..5).prop_map(|p| Term::iri(format!("http://vocab.example.org/p{p}")))
}

/// Subjects are namespaced per endpoint (`ep`): each endpoint owns its
/// subjects, as in real decentralized RDF, so no triple is replicated
/// across endpoints. (With replication, a federation correctly returns
/// the triple once *per holding endpoint* — bag semantics — while the
/// merged ground-truth store deduplicates; see the
/// `duplicate_triples_across_endpoints_preserve_bag_semantics` edge-case
/// test for that behaviour.)
fn arb_triple(ep: usize) -> impl Strategy<Value = lusail_rdf::Triple> {
    (0usize..12, arb_predicate(), arb_term()).prop_map(move |(e, p, o)| lusail_rdf::Triple {
        subject: Term::iri(format!("http://ep{ep}.example.org/e{e}")),
        predicate: p,
        object: o,
    })
}

fn arb_graph_for(ep: usize, max: usize) -> impl Strategy<Value = Graph> {
    proptest::collection::vec(arb_triple(ep), 1..max).prop_map(|ts| ts.into_iter().collect())
}

/// A connected chain BGP: ?v0 p ?v1 . ?v1 p ?v2 . … (sometimes with a
/// constant object at the end).
fn arb_chain_query() -> impl Strategy<Value = Query> {
    (
        1usize..4,
        proptest::collection::vec((0usize..5, any::<bool>()), 1..4),
        proptest::option::of(arb_term()),
    )
        .prop_map(|(_, preds, terminal)| {
            let mut tps = Vec::new();
            for (i, (p, flip)) in preds.iter().enumerate() {
                let subj = TermPattern::var(format!("v{i}"));
                let obj = TermPattern::var(format!("v{}", i + 1));
                let pred = TermPattern::iri(format!("http://vocab.example.org/p{p}"));
                let tp = if *flip {
                    TriplePattern::new(obj, pred, subj)
                } else {
                    TriplePattern::new(subj, pred, obj)
                };
                tps.push(tp);
            }
            if let Some(t) = terminal {
                let last = tps.len();
                tps.push(TriplePattern::new(
                    TermPattern::var(format!("v{last}")),
                    TermPattern::iri("http://vocab.example.org/p0"),
                    TermPattern::Term(t),
                ));
            }
            Query::select(SelectQuery::new(Projection::All, GraphPattern::Bgp(tps)))
        })
}

/// A richer query: a chain BGP, optionally extended with an OPTIONAL
/// block, a numeric FILTER, a UNION arm, or a BIND.
fn arb_rich_query() -> impl Strategy<Value = Query> {
    (
        proptest::collection::vec((0usize..5, any::<bool>()), 1..3),
        proptest::option::of(0usize..5),          // OPTIONAL predicate
        proptest::option::of(-20i64..20),         // FILTER bound
        proptest::option::of(0usize..5),          // UNION arm predicate
        any::<bool>(),                            // BIND
    )
        .prop_map(|(preds, optional, filter, union_arm, bind)| {
            let mut tps = Vec::new();
            for (i, (p, flip)) in preds.iter().enumerate() {
                let subj = TermPattern::var(format!("v{i}"));
                let obj = TermPattern::var(format!("v{}", i + 1));
                let pred = TermPattern::iri(format!("http://vocab.example.org/p{p}"));
                tps.push(if *flip {
                    TriplePattern::new(obj, pred, subj)
                } else {
                    TriplePattern::new(subj, pred, obj)
                });
            }
            let mut pattern = GraphPattern::Bgp(tps);
            if let Some(p) = optional {
                let opt = GraphPattern::Bgp(vec![TriplePattern::new(
                    TermPattern::var("v0"),
                    TermPattern::iri(format!("http://vocab.example.org/p{p}")),
                    TermPattern::var("opt"),
                )]);
                pattern = GraphPattern::LeftJoin(Box::new(pattern), Box::new(opt));
            }
            if let Some(p) = union_arm {
                let arm = GraphPattern::Bgp(vec![TriplePattern::new(
                    TermPattern::var("v0"),
                    TermPattern::iri(format!("http://vocab.example.org/p{p}")),
                    TermPattern::var("u"),
                )]);
                pattern = GraphPattern::Union(Box::new(pattern), Box::new(arm));
            }
            if bind {
                pattern = GraphPattern::Bind(
                    Box::new(pattern),
                    Expression::Str(Box::new(Expression::Var(Variable::new("v0")))),
                    Variable::new("bound"),
                );
            }
            if let Some(b) = filter {
                pattern = GraphPattern::Filter(
                    Box::new(pattern),
                    Expression::Or(
                        Box::new(Expression::Gt(
                            Box::new(Expression::Var(Variable::new("v1"))),
                            Box::new(Expression::Term(Term::integer(b))),
                        )),
                        Box::new(Expression::Not(Box::new(Expression::Bound(Variable::new(
                            "v1",
                        ))))),
                    ),
                );
            }
            Query::select(SelectQuery::new(Projection::All, pattern))
        })
}

// ---- properties ---------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// The paper's correctness claim, fuzzed: on arbitrary decentralized
    /// graphs, Lusail's answer equals evaluating the merged graph.
    #[test]
    fn lusail_equals_merged_store_on_random_federations(
        g1 in arb_graph_for(0, 30),
        g2 in arb_graph_for(1, 30),
        g3 in arb_graph_for(2, 20),
        query in arb_chain_query(),
    ) {
        let graphs = vec![
            ("ep0".to_string(), g1),
            ("ep1".to_string(), g2),
            ("ep2".to_string(), g3),
        ];
        // Arbitrary graphs may repeat instances across endpoints (§3.3
        // Case 2), so the sound paranoid-locality mode is required for
        // exact merged-store equality; the default mode is exercised by
        // the benchmark-workload integration tests, whose data satisfies
        // the paper's endpoint-exclusivity assumption.
        let engine = LusailEngine::new(
            federation_from_graphs(graphs.clone(), NetworkProfile::instant()),
            LusailConfig { threads: Some(2), paranoid_locality: true, ..Default::default() },
        );
        let actual = engine.execute(&query).unwrap();
        let expected = ground_truth(&graphs, &query);
        assert_same_solutions("random federation", &actual, &expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Rich query shapes (OPTIONAL / UNION / FILTER / BIND) on random
    /// federations still match the merged-store ground truth.
    #[test]
    fn lusail_rich_queries_match_ground_truth(
        g1 in arb_graph_for(0, 25),
        g2 in arb_graph_for(1, 25),
        query in arb_rich_query(),
    ) {
        let graphs = vec![("ep0".to_string(), g1), ("ep1".to_string(), g2)];
        let engine = LusailEngine::new(
            federation_from_graphs(graphs.clone(), NetworkProfile::instant()),
            LusailConfig { threads: Some(2), paranoid_locality: true, ..Default::default() },
        );
        let actual = engine.execute(&query).unwrap();
        let expected = ground_truth(&graphs, &query);
        assert_same_solutions("rich random federation", &actual, &expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Serializer/parser round trip on generated queries.
    #[test]
    fn query_roundtrip(query in arb_chain_query()) {
        let text = serialize_query(&query);
        let reparsed = parse_query(&text).unwrap();
        prop_assert_eq!(query, reparsed);
    }

    /// Dictionary encode/decode is a bijection on interned terms.
    #[test]
    fn dictionary_roundtrip(terms in proptest::collection::vec(arb_term(), 1..50)) {
        let mut dict = Dictionary::new();
        let ids: Vec<_> = terms.iter().map(|t| dict.encode(t)).collect();
        for (t, id) in terms.iter().zip(&ids) {
            prop_assert_eq!(dict.decode(*id), t);
            prop_assert_eq!(dict.get(t), Some(*id));
        }
        // Distinct terms get distinct ids.
        let mut unique: Vec<&Term> = Vec::new();
        for t in &terms {
            if !unique.contains(&t) {
                unique.push(t);
            }
        }
        prop_assert_eq!(dict.len(), unique.len());
    }

    /// N-Triples serialize/parse round trip.
    #[test]
    fn ntriples_roundtrip(g in arb_graph_for(0, 40)) {
        let text = lusail_rdf::ntriples::serialize(&g);
        let back = lusail_rdf::ntriples::parse(&text).unwrap();
        prop_assert_eq!(g.triples(), back.triples());
    }

    /// Join row counts are symmetric, and every output row is compatible
    /// with the shared variables.
    #[test]
    fn join_is_symmetric_in_cardinality(
        rows_a in proptest::collection::vec((0u8..6, 0u8..6), 0..20),
        rows_b in proptest::collection::vec((0u8..6, 0u8..6), 0..20),
    ) {
        let v = |n: &str| Variable::new(n);
        let t = |i: u8| Term::integer(i as i64);
        let mut a = Relation::new(vec![v("x"), v("y")]);
        for (x, y) in &rows_a {
            a.push(vec![Some(t(*x)), Some(t(*y))]);
        }
        let mut b = Relation::new(vec![v("y"), v("z")]);
        for (y, z) in &rows_b {
            b.push(vec![Some(t(*y)), Some(t(*z))]);
        }
        let ab = a.join(&b);
        let ba = b.join(&a);
        prop_assert_eq!(ab.len(), ba.len());
        let yi = ab.index_of(&v("y")).unwrap();
        for row in ab.rows() {
            prop_assert!(row[yi].is_some());
        }
    }

    /// Left join never loses left rows.
    #[test]
    fn left_join_preserves_left_cardinality_lower_bound(
        rows_a in proptest::collection::vec(0u8..6, 1..15),
        rows_b in proptest::collection::vec((0u8..6, 0u8..6), 0..15),
    ) {
        let v = |n: &str| Variable::new(n);
        let t = |i: u8| Term::integer(i as i64);
        let mut a = Relation::new(vec![v("x")]);
        for x in &rows_a {
            a.push(vec![Some(t(*x))]);
        }
        let mut b = Relation::new(vec![v("x"), v("z")]);
        for (x, z) in &rows_b {
            b.push(vec![Some(t(*x)), Some(t(*z))]);
        }
        let lj = a.left_join(&b);
        prop_assert!(lj.len() >= a.len());
        // Every left value appears in the output.
        let xi = lj.index_of(&v("x")).unwrap();
        for x in &rows_a {
            prop_assert!(lj.rows().iter().any(|r| r[xi] == Some(t(*x))));
        }
    }

    /// q-error is always ≥ 1 (or infinite) and symmetric.
    #[test]
    fn q_error_properties(e in 0usize..1000, a in 0usize..1000) {
        let q = lusail_core::sape::q_error(e, a);
        prop_assert!(q >= 1.0);
        let q_rev = lusail_core::sape::q_error(a, e);
        prop_assert_eq!(q, q_rev);
    }

    /// Chauvenet never rejects points of a constant sample, and the
    /// cleaned mean lies within the sample range.
    #[test]
    fn chauvenet_sanity(xs in proptest::collection::vec(0.0f64..1e6, 3..40)) {
        let outliers = lusail_core::sape::stats::chauvenet_outliers(&xs);
        prop_assert_eq!(outliers.len(), xs.len());
        let kept: Vec<f64> = xs.iter().zip(&outliers).filter(|(_, &o)| !o).map(|(&x, _)| x).collect();
        prop_assert!(!kept.is_empty(), "Chauvenet must not reject everything");
        let (mu, _) = lusail_core::sape::stats::clean_mean_std(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mu >= min && mu <= max);
    }

    /// The tiny regex engine agrees with plain substring search on
    /// metacharacter-free patterns.
    #[test]
    fn regex_matches_contains_for_plain_patterns(
        pat in "[a-z]{1,6}",
        text in "[a-z]{0,24}",
    ) {
        let re = lusail_store::regex_lite::Regex::new(&pat, "").unwrap();
        prop_assert_eq!(re.is_match(&text), text.contains(&pat));
    }

    /// FILTER expression evaluation is deterministic and total (never
    /// panics) on arbitrary comparison expressions over integers.
    #[test]
    fn expressions_are_total(x in -100i64..100, y in -100i64..100, op in 0u8..6) {
        use lusail_store::expr::{eval_ebv, ExprContext};
        struct Ctx(i64, i64);
        impl ExprContext for Ctx {
            fn value_of(&self, v: &Variable) -> Option<Term> {
                match v.name() {
                    "x" => Some(Term::integer(self.0)),
                    "y" => Some(Term::integer(self.1)),
                    _ => None,
                }
            }
            fn exists(&mut self, _p: &GraphPattern) -> bool { false }
        }
        let lhs = Box::new(Expression::Var(Variable::new("x")));
        let rhs = Box::new(Expression::Var(Variable::new("y")));
        let e = match op {
            0 => Expression::Eq(lhs, rhs),
            1 => Expression::Ne(lhs, rhs),
            2 => Expression::Lt(lhs, rhs),
            3 => Expression::Le(lhs, rhs),
            4 => Expression::Gt(lhs, rhs),
            _ => Expression::Ge(lhs, rhs),
        };
        let expected = match op {
            0 => x == y,
            1 => x != y,
            2 => x < y,
            3 => x <= y,
            4 => x > y,
            _ => x >= y,
        };
        prop_assert_eq!(eval_ebv(&e, &mut Ctx(x, y)), expected);
    }
}
