//! Loopback end-to-end proof that the binary results codec is a pure
//! transport optimization: a federation negotiating the compact codec
//! returns *byte-identical* solutions to one forced onto SPARQL JSON, on
//! healthy fleets, against non-negotiating (JSON-only) endpoints, and in
//! `--partial` mode with a chaos endpoint down mid-fleet.
//!
//! The chaos case draws from the seeded PRNG discipline of the other
//! chaos suites: set `LUSAIL_CHAOS_SEED` to replay (the `codec` group in
//! `scripts/ci.sh` prints the seed on failure).

use integration::{assert_same_solutions, ground_truth};
use lusail_core::{LusailConfig, LusailEngine, ResultPolicy};
use lusail_federation::{
    results_json, FaultProfile, FaultyConfig, FaultyEndpoint, Federation, HttpConfig, HttpEndpoint,
    SparqlEndpoint,
};
use lusail_rdf::Graph;
use lusail_server::{ServerConfig, ServerHandle, SparqlServer};
use lusail_sparql::solution::Relation;
use lusail_store::{eval::QueryResult, Store};
use lusail_workloads::{lubm, qfed};
use std::sync::Arc;
use std::time::Duration;

fn chaos_seed() -> u64 {
    std::env::var("LUSAIL_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Spin one loopback server per graph. `server_offers_binary = false`
/// emulates foreign endpoints that only speak SPARQL JSON.
fn servers(graphs: &[(String, Graph)], server_offers_binary: bool) -> Vec<ServerHandle> {
    graphs
        .iter()
        .map(|(name, g)| {
            SparqlServer::bind(
                "127.0.0.1:0",
                Store::from_graph(g),
                ServerConfig {
                    name: name.clone(),
                    offer_binary: server_offers_binary,
                    ..ServerConfig::default()
                },
            )
            .expect("bind ephemeral port")
            .spawn()
        })
        .collect()
}

/// A federation of HTTP clients over the handles, offering (or not) the
/// binary codec in their `Accept` headers.
fn federation(
    graphs: &[(String, Graph)],
    handles: &[ServerHandle],
    client_offers_binary: bool,
) -> Federation {
    let endpoints: Vec<Arc<dyn SparqlEndpoint>> = graphs
        .iter()
        .zip(handles)
        .map(|((name, _), h)| {
            Arc::new(
                HttpEndpoint::new(name.clone(), &h.url())
                    .expect("valid loopback URL")
                    .with_config(HttpConfig {
                        offer_binary: client_offers_binary,
                        ..HttpConfig::default()
                    }),
            ) as Arc<dyn SparqlEndpoint>
        })
        .collect();
    Federation::new(endpoints)
}

/// Canonical bytes of a relation: rows sorted, then serialized as a
/// SPARQL JSON document. Two relations are byte-identical exactly when
/// these strings are equal.
fn canonical_bytes(rel: &Relation) -> String {
    let mut sorted = rel.clone();
    sorted.rows_mut().sort();
    results_json::serialize(&QueryResult::Solutions(sorted))
}

fn shutdown_all(handles: Vec<ServerHandle>) {
    for h in handles {
        h.shutdown();
    }
}

/// Healthy fleets on LUBM and QFed: the binary-negotiated federation must
/// produce byte-identical solutions to the JSON-forced one (and to the
/// merged-graph ground truth), while actually using the binary codec on
/// the wire with zero fallbacks.
#[test]
fn binary_negotiation_is_byte_identical_on_lubm_and_qfed() {
    let workloads: Vec<(&str, Vec<(String, Graph)>, Vec<_>)> = vec![
        (
            "lubm",
            lubm::generate_all(&lubm::LubmConfig::with_universities(2)),
            lubm::queries(),
        ),
        (
            "qfed",
            qfed::generate_all(&qfed::QfedConfig::default()),
            qfed::queries(),
        ),
    ];
    for (tag, graphs, queries) in workloads {
        let handles = servers(&graphs, true);
        let bin_fed = federation(&graphs, &handles, true);
        let json_fed = federation(&graphs, &handles, false);
        let bin_engine = LusailEngine::new(bin_fed.clone(), Default::default());
        let json_engine = LusailEngine::new(json_fed.clone(), Default::default());
        for q in &queries {
            let parsed = q.parse();
            let over_bin = bin_engine.execute(&parsed).expect(q.name);
            let over_json = json_engine.execute(&parsed).expect(q.name);
            assert_eq!(
                canonical_bytes(&over_bin),
                canonical_bytes(&over_json),
                "{tag}/{}: binary-negotiated bytes differ from JSON-negotiated",
                q.name
            );
            assert_same_solutions(
                &format!("{tag}/{} vs ground truth", q.name),
                &over_bin,
                &ground_truth(&graphs, &parsed),
            );
        }
        let bin_codec = bin_fed.total_codec().expect("wire-backed federation");
        assert!(
            bin_codec.binary_responses > 0,
            "{tag}: negotiation must actually pick the binary codec"
        );
        assert_eq!(
            bin_codec.fallbacks, 0,
            "{tag}: no fallbacks against a negotiating fleet"
        );
        assert_eq!(
            bin_codec.json_responses, 0,
            "{tag}: every response should be binary"
        );
        let json_codec = json_fed.total_codec().expect("wire-backed federation");
        assert_eq!(
            json_codec.binary_responses, 0,
            "{tag}: a JSON-only client must never receive binary"
        );
        assert!(json_codec.json_responses > 0);
        shutdown_all(handles);
    }
}

/// Foreign endpoints that never heard of the codec: the client offers
/// binary, the servers answer JSON, and the federation transparently
/// falls back — identical solutions, every response counted as a
/// fallback.
#[test]
fn json_only_endpoints_fall_back_transparently() {
    let graphs = lubm::generate_all(&lubm::LubmConfig::with_universities(2));
    // Servers that only speak SPARQL JSON, clients that offer binary.
    let handles = servers(&graphs, false);
    let fed = federation(&graphs, &handles, true);
    let engine = LusailEngine::new(fed.clone(), Default::default());
    for q in lubm::queries() {
        let parsed = q.parse();
        let rel = engine.execute(&parsed).expect(q.name);
        assert_same_solutions(
            &format!("{} via fallback vs ground truth", q.name),
            &rel,
            &ground_truth(&graphs, &parsed),
        );
    }
    let codec = fed.total_codec().expect("wire-backed federation");
    assert_eq!(
        codec.binary_responses, 0,
        "a non-negotiating server must never emit binary"
    );
    assert!(codec.json_responses > 0);
    assert_eq!(
        codec.fallbacks, codec.json_responses,
        "every JSON response to a binary offer is a counted fallback"
    );
    shutdown_all(handles);
}

/// `--partial` with a chaos endpoint: one endpoint of three is hard-down
/// (wrapped in the seeded fault injector); partial mode must return the
/// same bytes whether the survivors speak binary or JSON, with the
/// degradation warned either way.
#[test]
fn partial_mode_is_codec_identical_with_chaos_endpoint() {
    let graphs = lubm::generate_all(&lubm::LubmConfig::with_universities(3));
    let handles = servers(&graphs, true);

    let build_fed = |offer: bool| -> Federation {
        let endpoints: Vec<Arc<dyn SparqlEndpoint>> = graphs
            .iter()
            .zip(&handles)
            .enumerate()
            .map(|(i, ((name, _), h))| {
                let http = Arc::new(
                    HttpEndpoint::new(name.clone(), &h.url())
                        .expect("valid loopback URL")
                        .with_config(HttpConfig {
                            offer_binary: offer,
                            retries: 1,
                            ..HttpConfig::default()
                        }),
                ) as Arc<dyn SparqlEndpoint>;
                if i == graphs.len() - 1 {
                    // The last endpoint is dead for the whole test.
                    Arc::new(FaultyEndpoint::with_config(
                        http,
                        chaos_seed(),
                        FaultProfile::hard_down(),
                        FaultyConfig {
                            retries: 1,
                            backoff: Duration::from_micros(100),
                            failure_latency: Duration::from_micros(200),
                            ..FaultyConfig::default()
                        },
                    )) as Arc<dyn SparqlEndpoint>
                } else {
                    http
                }
            })
            .collect();
        Federation::new(endpoints)
    };

    let config = LusailConfig {
        result_policy: ResultPolicy::Partial,
        ..LusailConfig::without_cache()
    };
    let bin_fed = build_fed(true);
    let json_fed = build_fed(false);
    let bin_engine = LusailEngine::new(bin_fed.clone(), config.clone());
    let json_engine = LusailEngine::new(json_fed, config);

    let mut degraded = 0;
    for q in lubm::queries() {
        let parsed = q.parse();
        let (bin_rel, bin_profile) = bin_engine
            .execute_profiled(&parsed)
            .unwrap_or_else(|e| panic!("{} (seed {}): {e}", q.name, chaos_seed()));
        let (json_rel, json_profile) = json_engine
            .execute_profiled(&parsed)
            .unwrap_or_else(|e| panic!("{} (seed {}): {e}", q.name, chaos_seed()));
        assert_eq!(
            canonical_bytes(&bin_rel),
            canonical_bytes(&json_rel),
            "{} (seed {}): partial results differ between codecs",
            q.name,
            chaos_seed()
        );
        assert_eq!(
            bin_profile.warnings.is_empty(),
            json_profile.warnings.is_empty(),
            "{} (seed {}): codecs disagree on degradation",
            q.name,
            chaos_seed()
        );
        if !bin_profile.warnings.is_empty() {
            degraded += 1;
        }
    }
    assert!(
        degraded > 0,
        "seed {}: at least one query must have ridden out the dead endpoint",
        chaos_seed()
    );
    let codec = bin_fed.total_codec().expect("wire-backed federation");
    assert!(
        codec.binary_responses > 0,
        "survivors must still negotiate binary under partial mode"
    );
    shutdown_all(handles);
}
