//! Federated evaluation of the SPARQL 1.1 extensions — GROUP BY
//! aggregates, BIND, MINUS — against the merged-store ground truth, for
//! Lusail and the baselines.

use integration::{assert_same_solutions, ground_truth};
use lusail_baselines::{FedX, FedXConfig, FederatedEngine, Splendid};
use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::NetworkProfile;
use lusail_rdf::{Graph, Term};
use lusail_sparql::parse_query;
use lusail_workloads::federation_from_graphs;

fn graphs() -> Vec<(String, Graph)> {
    let mut g1 = Graph::new();
    let mut g2 = Graph::new();
    for i in 0..12 {
        let item = Term::iri(format!("http://a/item{i}"));
        g1.add(
            item.clone(),
            Term::iri("http://x/group"),
            Term::literal(format!("g{}", i % 3)),
        );
        g1.add(item.clone(), Term::iri("http://x/value"), Term::integer(i));
        if i % 4 == 0 {
            g1.add(
                item.clone(),
                Term::iri("http://x/flagged"),
                Term::literal("yes"),
            );
        }
        g2.add(item, Term::iri("http://x/score"), Term::integer(i * 10));
    }
    vec![("a".to_string(), g1), ("b".to_string(), g2)]
}

fn lusail() -> LusailEngine {
    LusailEngine::new(
        federation_from_graphs(graphs(), NetworkProfile::instant()),
        LusailConfig::default(),
    )
}

fn check_all_engines(q: &str) {
    let query = parse_query(q).unwrap();
    let expected = ground_truth(&graphs(), &query);
    let engines: Vec<Box<dyn FederatedEngine>> = vec![
        Box::new(lusail()),
        Box::new(FedX::new(
            federation_from_graphs(graphs(), NetworkProfile::instant()),
            FedXConfig::default(),
        )),
        Box::new(Splendid::new(federation_from_graphs(
            graphs(),
            NetworkProfile::instant(),
        ))),
    ];
    for engine in engines {
        let actual = engine.execute(&query).unwrap();
        assert_same_solutions(&format!("{} on {q}", engine.name()), &actual, &expected);
    }
}

#[test]
fn federated_group_by_sum() {
    // Cross-endpoint join, grouped at the federator.
    check_all_engines(
        "SELECT ?g (SUM(?s) AS ?total) WHERE { ?i <http://x/group> ?g . ?i <http://x/score> ?s } GROUP BY ?g",
    );
}

#[test]
fn federated_group_by_count_avg_min_max() {
    check_all_engines(
        "SELECT ?g (COUNT(*) AS ?n) (AVG(?v) AS ?avg) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) \
         WHERE { ?i <http://x/group> ?g . ?i <http://x/value> ?v } GROUP BY ?g",
    );
}

#[test]
fn federated_bind() {
    check_all_engines(
        "SELECT ?i ?double WHERE { ?i <http://x/value> ?v . ?i <http://x/score> ?s . BIND(?v * 2 AS ?double) }",
    );
}

#[test]
fn federated_bind_feeds_filter() {
    check_all_engines(
        "SELECT ?i ?sum WHERE { ?i <http://x/value> ?v . ?i <http://x/score> ?s . \
         BIND(?v + ?s AS ?sum) FILTER(?sum > 50) }",
    );
}

#[test]
fn federated_minus() {
    // Items with scores, minus the flagged ones (flags live on endpoint a,
    // scores on endpoint b — the MINUS group is itself federated).
    check_all_engines(
        "SELECT ?i ?s WHERE { ?i <http://x/score> ?s MINUS { ?i <http://x/flagged> ?f } }",
    );
}

#[test]
fn minus_results_sane() {
    let q = parse_query(
        "SELECT ?i ?s WHERE { ?i <http://x/score> ?s MINUS { ?i <http://x/flagged> ?f } }",
    )
    .unwrap();
    let rel = lusail().execute(&q).unwrap();
    // 12 items, 3 flagged (0, 4, 8) → 9 survivors.
    assert_eq!(rel.len(), 9);
}

#[test]
fn grouped_aggregate_values_sane() {
    let q = parse_query(
        "SELECT ?g (SUM(?v) AS ?total) WHERE { ?i <http://x/group> ?g . ?i <http://x/value> ?v } GROUP BY ?g",
    )
    .unwrap();
    let rel = lusail().execute(&q).unwrap();
    assert_eq!(rel.len(), 3);
    // g0 holds values {0,3,6,9} → 18.
    let g0 = rel
        .rows()
        .iter()
        .find(|r| r[0] == Some(Term::literal("g0")))
        .expect("group g0 present");
    assert_eq!(g0[1], Some(Term::integer(18)));
}
