//! Failure injection: how the engines behave against endpoints that
//! enforce real-server operational limits (the paper's Table 2 runs
//! against real public endpoints, where FedX hits runtime exceptions and
//! zero-results errors).

use lusail_baselines::{FedX, FedXConfig, FederatedEngine};
use lusail_core::{EngineError, LusailConfig, LusailEngine};
use lusail_federation::{EndpointLimits, NetworkProfile};
use lusail_rdf::{Graph, Term};
use lusail_sparql::parse_query;
use lusail_workloads::{federation_from_graphs_limited, largerdf};

fn chain_graphs(n: usize) -> Vec<(String, Graph)> {
    // Endpoint "left" holds n links with long IRIs; "right" holds many
    // more details (so SAPE delays the weight subquery and bound-joins it
    // on the ?d values found on the left).
    let mut g1 = Graph::new();
    let mut g2 = Graph::new();
    for i in 0..n {
        let left = Term::iri(format!(
            "http://left.example.org/some/rather/long/entity/path/item-number-{i:05}"
        ));
        let right = Term::iri(format!(
            "http://right.example.org/some/rather/long/entity/path/detail-number-{i:05}"
        ));
        g1.add(left.clone(), Term::iri("http://x/linked"), right.clone());
    }
    for i in 0..n * 6 {
        let right = Term::iri(format!(
            "http://right.example.org/some/rather/long/entity/path/detail-number-{i:05}"
        ));
        g2.add(right, Term::iri("http://x/weight"), Term::integer(i as i64));
    }
    vec![("left".to_string(), g1), ("right".to_string(), g2)]
}

const CHAIN_QUERY: &str =
    "SELECT ?s ?d ?w WHERE { ?s <http://x/linked> ?d . ?d <http://x/weight> ?w }";

#[test]
fn lusail_respects_request_size_limits_via_block_chunking() {
    // 600 bindings × ~75-byte IRIs would blow an 8 KiB request in one
    // VALUES block; byte-capped chunking must keep every request legal.
    let graphs = chain_graphs(600);
    let fed = federation_from_graphs_limited(
        graphs,
        NetworkProfile::instant(),
        EndpointLimits {
            max_request_bytes: Some(8_192),
            max_result_rows: None,
        },
    );
    let engine = LusailEngine::new(fed, LusailConfig::default());
    let q = parse_query(CHAIN_QUERY).unwrap();
    let rel = engine.execute(&q).unwrap();
    assert_eq!(rel.len(), 600);
}

#[test]
fn oversized_block_config_surfaces_endpoint_error() {
    // Sanity check of the failure path itself: with the byte cap lifted
    // far above the server's limit, the engine must report the endpoint
    // rejection instead of silently dropping data.
    let graphs = chain_graphs(600);
    let fed = federation_from_graphs_limited(
        graphs,
        NetworkProfile::instant(),
        EndpointLimits {
            max_request_bytes: Some(2_048),
            max_result_rows: None,
        },
    );
    let engine = LusailEngine::new(
        fed,
        LusailConfig {
            bound_block_max_bytes: 1 << 20,
            ..Default::default()
        },
    );
    let q = parse_query(CHAIN_QUERY).unwrap();
    match engine.execute(&q) {
        Err(EngineError::Endpoint(e)) => assert!(e.message.contains("exceeds"), "{e}"),
        other => panic!("expected endpoint error, got {other:?}"),
    }
}

#[test]
fn fedx_also_propagates_endpoint_errors() {
    // FedX's grouped query with a large VALUES block (big bind_block_size)
    // trips the same limit.
    let graphs = chain_graphs(600);
    let fed = federation_from_graphs_limited(
        graphs,
        NetworkProfile::instant(),
        EndpointLimits {
            max_request_bytes: Some(2_048),
            max_result_rows: None,
        },
    );
    let fedx = FedX::new(
        fed,
        FedXConfig {
            bind_block_size: 500,
            ..Default::default()
        },
    );
    let q = parse_query(CHAIN_QUERY).unwrap();
    assert!(matches!(fedx.execute(&q), Err(EngineError::Endpoint(_))));
    // With its standard small blocks, FedX stays under the limit.
    let graphs = chain_graphs(600);
    let fed = federation_from_graphs_limited(
        graphs,
        NetworkProfile::instant(),
        EndpointLimits {
            max_request_bytes: Some(2_048),
            max_result_rows: None,
        },
    );
    let fedx = FedX::new(fed, FedXConfig::default());
    assert_eq!(fedx.execute(&q).unwrap().len(), 600);
}

#[test]
fn lusail_answers_c9_under_real_server_limits() {
    // The Table 2 scenario: LargeRDFBench C9 against endpoints with an
    // 8 KiB request ceiling. Lusail must still answer correctly.
    let cfg = largerdf::LargeRdfConfig {
        scale: 0.5,
        ..Default::default()
    };
    let graphs = largerdf::generate_all(&cfg);
    let limited = federation_from_graphs_limited(
        graphs.clone(),
        NetworkProfile::instant(),
        EndpointLimits {
            max_request_bytes: Some(8_192),
            max_result_rows: Some(100_000),
        },
    );
    let engine = LusailEngine::new(limited, LusailConfig::default());
    let q = largerdf::all_queries()
        .into_iter()
        .find(|q| q.name == "C9")
        .unwrap()
        .parse();
    let limited_result = engine.execute(&q).unwrap();

    let unlimited = LusailEngine::new(
        lusail_workloads::federation_from_graphs(graphs, NetworkProfile::instant()),
        LusailConfig::default(),
    );
    let unlimited_result = unlimited.execute(&q).unwrap();
    assert_eq!(limited_result.len(), unlimited_result.len());
    assert!(!limited_result.is_empty());
}
