//! Engine-level edge cases across the full stack.

use integration::{assert_same_solutions, ground_truth};
use lusail_baselines::{FedX, FedXConfig, FederatedEngine, Splendid};
use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::{Federation, NetworkProfile, SimulatedEndpoint, SparqlEndpoint};
use lusail_rdf::{Graph, Literal, Term};
use lusail_sparql::parse_query;
use lusail_store::Store;
use std::sync::Arc;

fn graphs() -> Vec<(String, Graph)> {
    let mut g1 = Graph::new();
    for i in 0..10 {
        let s = Term::iri(format!("http://a/item{i}"));
        g1.add(s.clone(), Term::iri("http://x/value"), Term::integer(i));
        g1.add(
            s.clone(),
            Term::iri("http://x/label"),
            Term::literal(format!("item {i}")),
        );
        if i % 2 == 0 {
            g1.add(s, Term::iri("http://x/tag"), Term::literal("even"));
        }
    }
    let mut g2 = Graph::new();
    for i in 0..10 {
        g2.add(
            Term::iri(format!("http://a/item{i}")),
            Term::iri("http://x/linked"),
            Term::iri(format!("http://b/detail{i}")),
        );
        g2.add(
            Term::iri(format!("http://b/detail{i}")),
            Term::iri("http://x/weight"),
            Term::Literal(Literal::double(i as f64 * 1.5)),
        );
    }
    vec![("a".to_string(), g1), ("b".to_string(), g2)]
}

fn engine() -> LusailEngine {
    let fed = lusail_workloads::federation_from_graphs(graphs(), NetworkProfile::instant());
    LusailEngine::new(fed, LusailConfig::default())
}

fn check(q: &str) {
    let query = parse_query(q).unwrap();
    let actual = engine().execute(&query).unwrap();
    let expected = ground_truth(&graphs(), &query);
    assert_same_solutions(q, &actual, &expected);
}

#[test]
fn limit_zero() {
    let q = parse_query("SELECT ?s WHERE { ?s <http://x/value> ?v } LIMIT 0").unwrap();
    assert!(engine().execute(&q).unwrap().is_empty());
}

#[test]
fn offset_beyond_result() {
    let q = parse_query("SELECT ?s WHERE { ?s <http://x/value> ?v } OFFSET 99").unwrap();
    assert!(engine().execute(&q).unwrap().is_empty());
}

#[test]
fn offset_and_limit_slice() {
    let q = parse_query("SELECT ?v WHERE { ?s <http://x/value> ?v } ORDER BY ?v LIMIT 3 OFFSET 2")
        .unwrap();
    let rel = engine().execute(&q).unwrap();
    let vals: Vec<_> = rel.rows().iter().map(|r| r[0].clone().unwrap()).collect();
    assert_eq!(
        vals,
        vec![Term::integer(2), Term::integer(3), Term::integer(4)]
    );
}

#[test]
fn order_by_desc_numeric() {
    let q = parse_query("SELECT ?v WHERE { ?s <http://x/value> ?v } ORDER BY DESC(?v) LIMIT 1")
        .unwrap();
    let rel = engine().execute(&q).unwrap();
    assert_eq!(rel.rows()[0][0], Some(Term::integer(9)));
}

#[test]
fn projection_of_never_bound_variable() {
    let q = parse_query("SELECT ?s ?ghost WHERE { ?s <http://x/tag> \"even\" }").unwrap();
    let rel = engine().execute(&q).unwrap();
    assert_eq!(rel.len(), 5);
    assert!(rel.rows().iter().all(|r| r[1].is_none()));
}

#[test]
fn cross_endpoint_chains_match_ground_truth() {
    check("SELECT ?s ?w WHERE { ?s <http://x/value> ?v . ?s <http://x/linked> ?d . ?d <http://x/weight> ?w }");
    check(
        "SELECT ?s ?w WHERE { ?s <http://x/linked> ?d . ?d <http://x/weight> ?w . FILTER(?w > 6) }",
    );
    check(
        "SELECT ?s ?t ?w WHERE { ?s <http://x/linked> ?d . ?d <http://x/weight> ?w OPTIONAL { ?s <http://x/tag> ?t } }",
    );
}

#[test]
fn numeric_comparison_across_datatypes() {
    // integer ?v vs double ?w comparisons coerce numerically.
    check(
        "SELECT ?s WHERE { ?s <http://x/value> ?v . ?s <http://x/linked> ?d . ?d <http://x/weight> ?w . FILTER(?w > ?v) }",
    );
}

#[test]
fn values_multi_variable_rows() {
    let q = parse_query(
        "SELECT ?s ?v WHERE { ?s <http://x/value> ?v . \
         VALUES (?s ?v) { (<http://a/item1> 1) (<http://a/item2> 99) (UNDEF 3) } }",
    )
    .unwrap();
    let rel = engine().execute(&q).unwrap();
    // item1/1 matches; item2/99 contradicts the data; UNDEF/3 matches item3.
    assert_eq!(rel.len(), 2);
}

#[test]
fn filter_regex_at_endpoint() {
    check("SELECT ?s WHERE { ?s <http://x/label> ?l . FILTER(REGEX(?l, \"item [3-5]\")) }");
}

#[test]
fn union_of_disjoint_variable_sets() {
    let q = parse_query(
        "SELECT ?a ?b WHERE { { ?a <http://x/tag> \"even\" } UNION { ?b <http://x/weight> ?w . FILTER(?w > 12) } }",
    )
    .unwrap();
    let rel = engine().execute(&q).unwrap();
    // 5 even items (bind ?a only) + 1 heavy detail (bind ?b only).
    assert_eq!(rel.len(), 6);
    assert!(rel.rows().iter().any(|r| r[0].is_some() && r[1].is_none()));
    assert!(rel.rows().iter().any(|r| r[0].is_none() && r[1].is_some()));
}

#[test]
fn ask_false_when_filter_excludes_all() {
    let q = parse_query("ASK { ?s <http://x/value> ?v . FILTER(?v > 100) }").unwrap();
    assert!(!engine().execute_ask(&q).unwrap());
}

#[test]
fn count_with_variable() {
    let q = parse_query(
        "SELECT (COUNT(?t) AS ?c) WHERE { ?s <http://x/value> ?v OPTIONAL { ?s <http://x/tag> ?t } }",
    )
    .unwrap();
    let rel = engine().execute(&q).unwrap();
    // COUNT(?t) counts only bound tags: the 5 even items.
    assert_eq!(rel.rows()[0][0], Some(Term::integer(5)));
}

#[test]
fn splendid_agrees_on_cross_endpoint_chain() {
    let q = parse_query(
        "SELECT ?s ?w WHERE { ?s <http://x/value> ?v . ?s <http://x/linked> ?d . ?d <http://x/weight> ?w }",
    )
    .unwrap();
    let fed = lusail_workloads::federation_from_graphs(graphs(), NetworkProfile::instant());
    let splendid = Splendid::new(fed);
    let expected = ground_truth(&graphs(), &q);
    let actual = splendid.execute(&q).unwrap();
    assert_same_solutions("splendid chain", &actual, &expected);
}

#[test]
fn fedx_block_size_one_still_correct() {
    let q = parse_query(
        "SELECT ?s ?w WHERE { ?s <http://x/value> ?v . ?s <http://x/linked> ?d . ?d <http://x/weight> ?w }",
    )
    .unwrap();
    let fed = lusail_workloads::federation_from_graphs(graphs(), NetworkProfile::instant());
    let fedx = FedX::new(
        fed,
        FedXConfig {
            bind_block_size: 1,
            ..Default::default()
        },
    );
    let expected = ground_truth(&graphs(), &q);
    let actual = fedx.execute(&q).unwrap();
    assert_same_solutions("fedx block=1", &actual, &expected);
}

#[test]
fn duplicate_triples_across_endpoints_preserve_bag_semantics() {
    // The same triple in two endpoints: a single-pattern query returns it
    // twice (union of endpoint results, bag semantics), exactly like a
    // real federation would.
    let mut g = Graph::new();
    g.add(
        Term::iri("http://a/x"),
        Term::iri("http://x/p"),
        Term::integer(1),
    );
    let fed = Federation::new(vec![
        Arc::new(SimulatedEndpoint::new(
            "e1",
            Store::from_graph(&g),
            NetworkProfile::instant(),
        )) as Arc<dyn SparqlEndpoint>,
        Arc::new(SimulatedEndpoint::new(
            "e2",
            Store::from_graph(&g),
            NetworkProfile::instant(),
        )) as Arc<dyn SparqlEndpoint>,
    ]);
    let engine = LusailEngine::new(fed, LusailConfig::default());
    let q = parse_query("SELECT ?s WHERE { ?s <http://x/p> ?v }").unwrap();
    assert_eq!(engine.execute(&q).unwrap().len(), 2);
    let q = parse_query("SELECT DISTINCT ?s WHERE { ?s <http://x/p> ?v }").unwrap();
    assert_eq!(engine.execute(&q).unwrap().len(), 1);
}

#[test]
fn filter_bridge_joins_disjoint_subgraphs_without_cross_product() {
    // Two disconnected subqueries of 2 000 rows each, bridged by
    // FILTER(?v = ?w): the equi-join bridge must avoid the 4-million-row
    // product (observable through runtime and, indirectly, memory).
    let mut g1 = Graph::new();
    let mut g2 = Graph::new();
    for i in 0..2000 {
        g1.add(
            Term::iri(format!("http://a/l{i}")),
            Term::iri("http://x/va"),
            Term::integer(i % 500),
        );
        g2.add(
            Term::iri(format!("http://b/r{i}")),
            Term::iri("http://x/vb"),
            Term::integer((i + 250) % 500),
        );
    }
    let graphs = vec![("a".to_string(), g1), ("b".to_string(), g2)];
    let fed = lusail_workloads::federation_from_graphs(graphs.clone(), NetworkProfile::instant());
    let engine = LusailEngine::new(fed, LusailConfig::default());
    let q = parse_query(
        "SELECT ?l ?r WHERE { ?l <http://x/va> ?v . ?r <http://x/vb> ?w . FILTER(?v = ?w) }",
    )
    .unwrap();
    let start = std::time::Instant::now();
    let rel = engine.execute(&q).unwrap();
    let elapsed = start.elapsed();
    // Each value 0..500 appears 4× on each side → 500 × 4 × 4 = 8 000 rows.
    assert_eq!(rel.len(), 8000);
    // Generous bound even for debug builds; the 4M-row cross product takes
    // minutes there.
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "bridge join took {elapsed:?} — cross product suspected"
    );
}

#[test]
fn case2_shared_instances_need_paranoid_locality() {
    // The paper's §3.3 "Case 2": the same object (`hub`) occurs at two
    // endpoints, each of which can join the pair locally — the
    // per-endpoint locality check passes, yet the cross-endpoint
    // combination (a from ep0, b from ep1) is a real answer of the merged
    // graph. The default (paper-faithful) mode returns the per-endpoint
    // answers; the sound paranoid mode recovers all of them.
    let hub = Term::iri("http://shared/hub");
    let mut g0 = Graph::new();
    g0.add(
        Term::iri("http://ep0/a"),
        Term::iri("http://x/p"),
        hub.clone(),
    );
    g0.add(
        Term::iri("http://ep0/a2"),
        Term::iri("http://x/q"),
        hub.clone(),
    );
    let mut g1 = Graph::new();
    g1.add(
        Term::iri("http://ep1/b"),
        Term::iri("http://x/p"),
        hub.clone(),
    );
    g1.add(
        Term::iri("http://ep1/b2"),
        Term::iri("http://x/q"),
        hub.clone(),
    );
    let graphs = vec![("ep0".to_string(), g0), ("ep1".to_string(), g1)];
    let q = parse_query("SELECT ?x ?y WHERE { ?x <http://x/p> ?v . ?y <http://x/q> ?v }").unwrap();

    // Ground truth over the merged graph: 2 × 2 combinations.
    let expected = ground_truth(&graphs, &q);
    assert_eq!(expected.len(), 4);

    // Default mode: the paper's behaviour — each endpoint's local pair
    // only (2 rows).
    let default_engine = LusailEngine::new(
        lusail_workloads::federation_from_graphs(graphs.clone(), NetworkProfile::instant()),
        LusailConfig::default(),
    );
    assert_eq!(default_engine.execute(&q).unwrap().len(), 2);

    // Paranoid mode: exact.
    let paranoid = LusailEngine::new(
        lusail_workloads::federation_from_graphs(graphs, NetworkProfile::instant()),
        LusailConfig {
            paranoid_locality: true,
            ..Default::default()
        },
    );
    let actual = paranoid.execute(&q).unwrap();
    assert_same_solutions("paranoid case2", &actual, &expected);
}

#[test]
fn single_endpoint_federation_degenerates_gracefully() {
    let (name, g) = graphs().remove(0);
    let fed = Federation::new(vec![Arc::new(SimulatedEndpoint::new(
        name,
        Store::from_graph(&g),
        NetworkProfile::instant(),
    )) as Arc<dyn SparqlEndpoint>]);
    let engine = LusailEngine::new(fed, LusailConfig::default());
    let q = parse_query(
        "SELECT ?s ?l WHERE { ?s <http://x/value> ?v . ?s <http://x/label> ?l . FILTER(?v >= 8) }",
    )
    .unwrap();
    let (rel, profile) = engine.execute_profiled(&q).unwrap();
    assert_eq!(rel.len(), 2);
    // One endpoint, co-located data → a single subquery, nothing global.
    assert!(profile.gjvs.is_empty());
    assert_eq!(profile.subqueries, 1);
}
