//! Driving LADE's public pieces directly over the paper's Figure 4
//! scenario, plus SAPE-level behaviours observable through the engine.

use lusail_core::cache::QueryCache;
use lusail_core::lade::gjv::detect_gjvs;
use lusail_core::source::select_sources;
use lusail_core::{LusailConfig, LusailEngine, RunContext};
use lusail_federation::{
    Federation, NetworkProfile, RequestHandler, SimulatedEndpoint, SparqlEndpoint,
};
use lusail_rdf::{vocab, Graph, Term};
use lusail_sparql::ast::{TermPattern, TriplePattern, Variable};
use lusail_sparql::parse_query;
use lusail_store::Store;
use std::sync::Arc;

fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
    let slot = |x: &str| {
        if let Some(v) = x.strip_prefix('?') {
            TermPattern::var(v)
        } else {
            TermPattern::iri(x)
        }
    };
    TriplePattern::new(slot(s), slot(p), slot(o))
}

/// The Figure 1 / Figure 4 data: EP1 has Ann (an advisor who teaches
/// nothing) and MIT's address; EP2 has the CMU students and Tim's remote
/// PhD edge.
fn figure4_federation() -> Federation {
    let ub = |l: &str| Term::iri(format!("{}{l}", vocab::ub::NS));
    let u1 = |l: &str| Term::iri(format!("http://univ1.example.org/{l}"));
    let u2 = |l: &str| Term::iri(format!("http://univ2.example.org/{l}"));
    let mut g1 = Graph::new();
    g1.add(u1("MIT"), ub("address"), Term::literal("XXX"));
    g1.add(u1("Bob"), ub("advisor"), u1("Ann"));
    g1.add(u1("Bob"), ub("takesCourse"), u1("ml"));
    g1.add(u1("Ann"), ub("PhDDegreeFrom"), u1("MIT"));
    // Ann teaches nothing → the advisor/teacherOf check fires at EP1.
    let mut g2 = Graph::new();
    g2.add(u2("CMU"), ub("address"), Term::literal("CCCC"));
    g2.add(u2("Kim"), ub("advisor"), u2("Tim"));
    g2.add(u2("Kim"), ub("takesCourse"), u2("os"));
    g2.add(u2("Tim"), ub("teacherOf"), u2("os"));
    g2.add(u2("Tim"), ub("PhDDegreeFrom"), u1("MIT")); // remote ?U
    g2.add(u2("Ann2"), ub("teacherOf"), u2("db")); // so EP1..EP2 both have teacherOf
    Federation::new(vec![
        Arc::new(SimulatedEndpoint::new(
            "EP1",
            Store::from_graph(&g1),
            NetworkProfile::instant(),
        )) as Arc<dyn SparqlEndpoint>,
        Arc::new(SimulatedEndpoint::new(
            "EP2",
            Store::from_graph(&g2),
            NetworkProfile::instant(),
        )) as Arc<dyn SparqlEndpoint>,
    ])
}

fn ub(l: &str) -> String {
    format!("{}{l}", vocab::ub::NS)
}

#[test]
fn figure4_locality_analysis() {
    let fed = figure4_federation();
    let handler = RequestHandler::new(4);
    let patterns = vec![
        tp("?S", &ub("advisor"), "?P"),       // 0
        tp("?P", &ub("teacherOf"), "?C"),     // 1
        tp("?S", &ub("takesCourse"), "?C2"),  // 2 (distinct course var: isolate ?S)
        tp("?P", &ub("PhDDegreeFrom"), "?U"), // 3
        tp("?U", &ub("address"), "?A"),       // 4
    ];
    let sources =
        select_sources(&fed, &handler, None, &patterns, &RunContext::unbounded()).unwrap();
    // advisor exists at both endpoints; so do the others except where not.
    assert_eq!(sources[0], vec![0, 1]);

    let analysis = detect_gjvs(
        &fed,
        &handler,
        None,
        &patterns,
        &sources,
        &RunContext::unbounded(),
    )
    .unwrap();
    // Figure 4's verdicts:
    // ?S: all advisees take courses at their own endpoint → local.
    assert!(!analysis.is_gjv(&Variable::new("S")), "{:?}", analysis.gjvs);
    // ?U: Tim's PhD university lives at EP1 → global.
    assert!(analysis.is_gjv(&Variable::new("U")), "{:?}", analysis.gjvs);
    // ?P: Ann advises but teaches nothing at EP1 → global (the paper's
    // "extraneous computation" case — safe but conservative).
    assert!(analysis.is_gjv(&Variable::new("P")), "{:?}", analysis.gjvs);
    assert!(analysis.check_queries_sent > 0);
}

#[test]
fn check_query_cache_eliminates_repeat_traffic() {
    let fed = figure4_federation();
    let handler = RequestHandler::new(4);
    let cache = QueryCache::new();
    let patterns = vec![
        tp("?P", &ub("PhDDegreeFrom"), "?U"),
        tp("?U", &ub("address"), "?A"),
    ];
    let sources = select_sources(
        &fed,
        &handler,
        Some(&cache),
        &patterns,
        &RunContext::unbounded(),
    )
    .unwrap();
    let first = detect_gjvs(
        &fed,
        &handler,
        Some(&cache),
        &patterns,
        &sources,
        &RunContext::unbounded(),
    )
    .unwrap();
    assert!(first.check_queries_sent > 0);
    assert_eq!(first.check_cache_hits, 0);

    let second = detect_gjvs(
        &fed,
        &handler,
        Some(&cache),
        &patterns,
        &sources,
        &RunContext::unbounded(),
    )
    .unwrap();
    assert_eq!(
        second.check_queries_sent, 0,
        "all checks must come from cache"
    );
    assert!(second.check_cache_hits > 0);
    assert_eq!(first.gjvs, second.gjvs);
}

#[test]
fn source_mismatch_detects_gjv_without_checks() {
    // The paper's Q3 observation: when the pair's source sets differ, the
    // GJV is detected from source selection alone, no endpoint traffic.
    let fed = figure4_federation();
    let handler = RequestHandler::new(4);
    let patterns = vec![
        // teacherOf: only EP2. advisor: both.
        tp("?S", &ub("advisor"), "?P"),
        tp("?P", &ub("teacherOf"), "?C"),
    ];
    let sources =
        select_sources(&fed, &handler, None, &patterns, &RunContext::unbounded()).unwrap();
    assert_ne!(sources[0], sources[1]);
    let before = fed.total_traffic().requests;
    let analysis = detect_gjvs(
        &fed,
        &handler,
        None,
        &patterns,
        &sources,
        &RunContext::unbounded(),
    )
    .unwrap();
    assert!(analysis.is_gjv(&Variable::new("P")));
    assert_eq!(analysis.check_queries_sent, 0);
    assert_eq!(fed.total_traffic().requests, before, "no check traffic");
}

#[test]
fn delayed_subquery_uses_bound_join() {
    // A generic pattern (all-endpoints type scan) joined with a selective
    // one: SAPE must delay the generic subquery, and the bound join must
    // keep the shipped result small. Observable via byte counts.
    let mut g1 = Graph::new();
    let mut g2 = Graph::new();
    for i in 0..300 {
        // Everyone has a name (generic); only a handful are "special".
        g1.add(
            Term::iri(format!("http://a/{i}")),
            Term::iri("http://x/name"),
            Term::literal(format!("entity number {i} with a reasonably long label")),
        );
    }
    for i in 0..3 {
        g2.add(
            Term::iri(format!("http://a/{i}")),
            Term::iri("http://x/special"),
            Term::integer(i),
        );
    }
    let fed = Federation::new(vec![
        Arc::new(SimulatedEndpoint::new(
            "names",
            Store::from_graph(&g1),
            NetworkProfile::instant(),
        )) as Arc<dyn SparqlEndpoint>,
        Arc::new(SimulatedEndpoint::new(
            "special",
            Store::from_graph(&g2),
            NetworkProfile::instant(),
        )) as Arc<dyn SparqlEndpoint>,
    ]);
    let engine = LusailEngine::new(fed, LusailConfig::default());
    let q =
        parse_query("SELECT ?s ?n ?v WHERE { ?s <http://x/name> ?n . ?s <http://x/special> ?v }")
            .unwrap();
    let (rel, profile) = engine.execute_profiled(&q).unwrap();
    assert_eq!(rel.len(), 3);
    assert_eq!(
        profile.delayed, 1,
        "the generic name subquery must be delayed"
    );
    // The bound join must not ship all 300 names: well under the full
    // relation's wire size.
    let bytes = engine.federation().total_traffic().bytes_received;
    assert!(
        bytes < 5_000,
        "bound join shipped too much: {bytes} bytes (full scan would be ~15kB)"
    );
}

#[test]
fn lusail_handles_empty_federation_members() {
    // An endpoint with no data must not break anything.
    let mut g = Graph::new();
    g.add(
        Term::iri("http://a/s"),
        Term::iri("http://x/p"),
        Term::integer(1),
    );
    let fed = Federation::new(vec![
        Arc::new(SimulatedEndpoint::new(
            "full",
            Store::from_graph(&g),
            NetworkProfile::instant(),
        )) as Arc<dyn SparqlEndpoint>,
        Arc::new(SimulatedEndpoint::new(
            "empty",
            Store::new(),
            NetworkProfile::instant(),
        )) as Arc<dyn SparqlEndpoint>,
    ]);
    let engine = LusailEngine::new(fed, LusailConfig::default());
    let q = parse_query("SELECT ?s WHERE { ?s <http://x/p> ?v }").unwrap();
    assert_eq!(engine.execute(&q).unwrap().len(), 1);
    // A pattern nothing answers.
    let q = parse_query("SELECT ?s WHERE { ?s <http://x/nothing> ?v }").unwrap();
    assert!(engine.execute(&q).unwrap().is_empty());
}
