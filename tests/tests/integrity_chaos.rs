//! Integrity-chaos suite: end-to-end behaviour of the result-integrity
//! defense against endpoints that lie with a `200 OK`.
//!
//! Three lies are injected via [`FaultyEndpoint`]:
//!
//! * **silent truncation** — the endpoint caps every plain `SELECT` but
//!   answers `COUNT` probes honestly. The engine must detect the cut via
//!   its verification probe and transparently reconstruct the complete
//!   result through `ORDER BY`+`LIMIT/OFFSET` paging, byte-identical to
//!   an all-healthy run, with *no* warnings (recovery reconciled).
//! * **miscounting** — the endpoint inflates every `COUNT`. Paging then
//!   exhausts below the claim, which is an irreconcilable divergence:
//!   strikes accumulate into quarantine, surfaced as a non-skippable
//!   integrity warning under `--partial` and a structured
//!   [`FailureKind::Integrity`] error under fail-fast.
//! * **bounded recovery** — reconstruction must stop early (and say so)
//!   under a tight memory budget, and must respect the query deadline.
//!
//! Every fault sequence is drawn from a seeded SplitMix64 stream; set
//! `LUSAIL_CHAOS_SEED` to replay a failing run (the `integrity-chaos`
//! group in `scripts/ci.sh` prints the seed it used on failure).

use integration::{assert_same_solutions, ground_truth};
use lusail_core::sape::recover;
use lusail_core::{EngineError, IntegrityConfig, LusailConfig, LusailEngine, ResultPolicy};
use lusail_federation::{
    results_json, Deadline, FailureKind, FaultProfile, FaultyConfig, FaultyEndpoint, Federation,
    NetworkProfile, SimulatedEndpoint, SparqlEndpoint,
};
use lusail_rdf::{Graph, Term};
use lusail_sparql::parse_query;
use lusail_sparql::solution::Relation;
use lusail_store::{eval::QueryResult, Store};
use lusail_workloads::prng::SplitMix64;
use lusail_workloads::{federation_from_graphs, lubm, qfed};
use std::sync::Arc;
use std::time::Duration;

fn chaos_seed() -> u64 {
    std::env::var("LUSAIL_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Canonical bytes of a relation: rows sorted, then serialized as a
/// SPARQL JSON document. Two relations are byte-identical exactly when
/// these strings are equal.
fn canonical_bytes(rel: &Relation) -> String {
    let mut sorted = rel.clone();
    sorted.rows_mut().sort();
    results_json::serialize(&QueryResult::Solutions(sorted))
}

/// Paranoid engine config: verify *every* response against a `COUNT(*)`
/// probe so each injected lie is exercised, not just eventual ones.
fn paranoid(policy: ResultPolicy) -> LusailConfig {
    LusailConfig {
        result_policy: policy,
        integrity: IntegrityConfig::paranoid(),
        ..LusailConfig::without_cache()
    }
}

/// A federation where *every* endpoint lies the same way: each simulated
/// endpoint is wrapped in a fault injector carrying `profile`.
fn lying_federation(graphs: &[(String, Graph)], profile: FaultProfile) -> Federation {
    let endpoints: Vec<Arc<dyn SparqlEndpoint>> = graphs
        .iter()
        .map(|(name, g)| {
            let inner = Arc::new(SimulatedEndpoint::new(
                name.clone(),
                Store::from_graph(g),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>;
            Arc::new(FaultyEndpoint::with_config(
                inner,
                chaos_seed(),
                profile,
                FaultyConfig::default(),
            )) as Arc<dyn SparqlEndpoint>
        })
        .collect();
    Federation::new(endpoints)
}

/// The silent cap applied in the truncation tests. Small enough that
/// most workload subqueries overflow it (so recovery actually pages),
/// large enough that `max_pages` is never the binding constraint.
const CAP: usize = 16;

/// A truncating fleet must be indistinguishable from a healthy one:
/// every LUBM and QFed query comes back byte-identical to the all-healthy
/// run (and to the merged-graph ground truth), without a single warning,
/// because honest `COUNT`s let paging reconcile every cut. The endpoints
/// stay out of quarantine — truncation is a strike only when the claim
/// cannot be reconciled.
#[test]
fn truncating_endpoints_recover_byte_identical_on_lubm_and_qfed() {
    let workloads: Vec<(&str, Vec<(String, Graph)>, Vec<_>)> = vec![
        (
            "lubm",
            lubm::generate_all(&lubm::LubmConfig::with_universities(2)),
            lubm::queries(),
        ),
        (
            "qfed",
            qfed::generate_all(&qfed::QfedConfig::default()),
            qfed::queries(),
        ),
    ];
    let mut total_truncations = 0u64;
    let mut total_pages = 0u64;
    for (tag, graphs, queries) in workloads {
        let healthy_engine = LusailEngine::new(
            federation_from_graphs(graphs.clone(), NetworkProfile::instant()),
            paranoid(ResultPolicy::FailFast),
        );
        let lying_engine = LusailEngine::new(
            lying_federation(&graphs, FaultProfile::silent_truncate(CAP)),
            paranoid(ResultPolicy::FailFast),
        );
        for q in &queries {
            let parsed = q.parse();
            let want = healthy_engine.execute(&parsed).expect(q.name);
            let (got, profile) = lying_engine
                .execute_profiled(&parsed)
                .unwrap_or_else(|e| panic!("{tag}/{} (seed {}): {e}", q.name, chaos_seed()));
            assert_eq!(
                canonical_bytes(&got),
                canonical_bytes(&want),
                "{tag}/{}: truncating fleet differs from healthy run (seed {})",
                q.name,
                chaos_seed()
            );
            assert!(
                profile.warnings.is_empty(),
                "{tag}/{}: reconciled recovery must be silent, got {:?}",
                q.name,
                profile.warnings
            );
            assert_same_solutions(
                &format!("{tag}/{} vs ground truth", q.name),
                &got,
                &ground_truth(&graphs, &parsed),
            );
        }
        for (name, snap) in lying_engine.integrity().snapshot() {
            assert!(
                !snap.quarantined && snap.count_divergences == 0,
                "{tag}/{name}: honest counts must not strike ({snap:?})"
            );
            total_truncations += snap.truncations_detected;
            total_pages += snap.pages_fetched;
        }
    }
    assert!(
        total_truncations > 0 && total_pages > total_truncations,
        "the cap of {CAP} rows should have forced multi-page recoveries \
         (detected {total_truncations}, fetched {total_pages} pages, seed {})",
        chaos_seed()
    );
}

// ---- miscounting endpoint → quarantine ---------------------------------

/// Rows each endpoint contributes to [`QUERY`] in the shard rigs.
const ROWS_PER_SHARD: usize = 10;

const QUERY: &str = "SELECT ?s ?d ?w WHERE { ?s <http://x/linked> ?d . ?d <http://x/weight> ?w }";

/// The endpoint wrapped in the fault injector.
const FAULTY_NAME: &str = "ep-2";

/// One endpoint's shard: link/weight chains over IRIs namespaced by
/// endpoint, so the join is local to each shard and every result row is
/// attributable to exactly one endpoint.
fn shard(idx: usize) -> Graph {
    let mut g = Graph::new();
    for i in 0..ROWS_PER_SHARD {
        let s = Term::iri(format!("http://ep{idx}.example.org/s{i}"));
        let d = Term::iri(format!("http://ep{idx}.example.org/d{i}"));
        g.add(s, Term::iri("http://x/linked"), d.clone());
        g.add(
            d,
            Term::iri("http://x/weight"),
            Term::integer((idx * ROWS_PER_SHARD + i) as i64),
        );
    }
    g
}

struct Rig {
    federation: Federation,
    faulty: Arc<FaultyEndpoint>,
}

/// Three shard endpoints; `ep-2` lies according to `profile`.
fn rig(profile: FaultProfile) -> Rig {
    let mut endpoints: Vec<Arc<dyn SparqlEndpoint>> = (0..2)
        .map(|idx| {
            Arc::new(SimulatedEndpoint::new(
                format!("ep-{idx}"),
                Store::from_graph(&shard(idx)),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>
        })
        .collect();
    let inner = Arc::new(SimulatedEndpoint::new(
        FAULTY_NAME,
        Store::from_graph(&shard(2)),
        NetworkProfile::instant(),
    )) as Arc<dyn SparqlEndpoint>;
    let faulty = Arc::new(FaultyEndpoint::with_config(
        inner,
        chaos_seed(),
        profile,
        FaultyConfig::default(),
    ));
    endpoints.push(faulty.clone() as Arc<dyn SparqlEndpoint>);
    Rig {
        federation: Federation::new(endpoints),
        faulty,
    }
}

/// A miscounting endpoint under `--partial`: paging exhausts below the
/// inflated claim, each query records a divergence strike, and after
/// `quarantine_after` strikes the endpoint is quarantined — mirrored into
/// its health registry — while the *results stay complete*, because the
/// rows themselves were honest and recovery kept them.
#[test]
fn miscounting_endpoint_is_quarantined_under_partial_with_structured_warning() {
    let rig = rig(FaultProfile::miscounts(3.0));
    let engine = LusailEngine::new(rig.federation.clone(), paranoid(ResultPolicy::Partial));
    let q = parse_query(QUERY).unwrap();

    let mut last_warnings = Vec::new();
    for run in 0..2 {
        let (rel, profile) = engine
            .execute_profiled(&q)
            .unwrap_or_else(|e| panic!("run {run} (seed {}): {e}", chaos_seed()));
        // The lie was about the count, not the rows: all three shards'
        // rows are present in every run.
        assert_eq!(
            rel.len(),
            3 * ROWS_PER_SHARD,
            "run {run}, seed {}",
            chaos_seed()
        );
        last_warnings = profile.warnings;
    }

    // Two runs → two strikes → quarantined, everywhere it is surfaced.
    assert!(
        engine.integrity().is_quarantined(FAULTY_NAME),
        "seed {}",
        chaos_seed()
    );
    assert!(
        rig.faulty.health_snapshot().quarantined,
        "quarantine must be mirrored into the endpoint's health registry"
    );
    let snap = engine.integrity().snapshot();
    let (_, s) = snap
        .iter()
        .find(|(n, _)| n == FAULTY_NAME)
        .expect("stats must cover the lying endpoint");
    assert!(s.count_divergences >= 2, "{s:?}");
    assert!(s.quarantine_entries >= 1, "{s:?}");
    assert!(s.quarantined, "{s:?}");

    // The last run's warning is structured: it names the endpoint, both
    // counts, and the quarantine standing.
    let w = last_warnings
        .iter()
        .find(|w| w.endpoint == FAULTY_NAME && w.message.starts_with("integrity:"))
        .unwrap_or_else(|| panic!("no integrity warning in {last_warnings:?}"));
    assert!(
        w.message.contains("claimed 30 rows but delivered 10"),
        "warning must carry observed vs claimed counts: {}",
        w.message
    );
    assert!(
        w.message.contains("endpoint quarantined"),
        "warning must state the quarantine standing: {}",
        w.message
    );
}

/// The same lie under fail-fast is a hard error carrying the
/// non-skippable [`FailureKind::Integrity`], the endpoint name, and both
/// counts — the paper's "partial results are worse than no results"
/// stance applied to integrity.
#[test]
fn miscounting_endpoint_fails_fast_with_integrity_error() {
    let rig = rig(FaultProfile::miscounts(3.0));
    let engine = LusailEngine::new(rig.federation.clone(), paranoid(ResultPolicy::FailFast));
    let err = engine.execute(&parse_query(QUERY).unwrap()).unwrap_err();
    match err {
        EngineError::Endpoint(e) => {
            assert_eq!(e.endpoint, FAULTY_NAME, "seed {}", chaos_seed());
            assert_eq!(e.kind, FailureKind::Integrity);
            assert!(
                !e.is_skippable(),
                "integrity failures must not be skippable"
            );
            assert!(
                e.message.contains("claimed 30 rows but delivered 10"),
                "error must carry observed vs claimed counts: {}",
                e.message
            );
        }
        other => panic!("expected a structured integrity error, got {other:?}"),
    }
}

// ---- bounded recovery --------------------------------------------------

/// `n` distinct (subject, object) rows under one predicate.
fn wide_graph(n: usize) -> Graph {
    let mut g = Graph::new();
    for i in 0..n {
        g.add(
            Term::iri(format!("http://x/s{i:05}")),
            Term::iri("http://x/p"),
            Term::iri(format!("http://x/o{i:05}")),
        );
    }
    g
}

fn single_endpoint_rig(rows: usize, profile: FaultProfile, network: NetworkProfile) -> Federation {
    let inner = Arc::new(SimulatedEndpoint::new(
        "trunky",
        Store::from_graph(&wide_graph(rows)),
        network,
    )) as Arc<dyn SparqlEndpoint>;
    Federation::new(vec![Arc::new(FaultyEndpoint::with_config(
        inner,
        chaos_seed(),
        profile,
        FaultyConfig::default(),
    )) as Arc<dyn SparqlEndpoint>])
}

/// Under `--partial` with a tight memory budget, a huge reconstruction
/// degrades *itself*, not the query: recovery stops once its pages would
/// claim more than half the remaining budget, the run still completes,
/// and exactly ONE integrity warning reports the stop — not one per page
/// (the per-page warning-dedup regression).
#[test]
fn recovery_is_bounded_by_the_memory_budget() {
    const ROWS: usize = 4000;
    let federation = single_endpoint_rig(
        ROWS,
        FaultProfile::silent_truncate(64),
        NetworkProfile::instant(),
    );
    let engine = LusailEngine::new(
        federation,
        LusailConfig {
            memory_budget: Some(32 * 1024),
            ..paranoid(ResultPolicy::Partial)
        },
    );
    let q = parse_query("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }").unwrap();
    let (rel, profile) = engine
        .execute_profiled(&q)
        .unwrap_or_else(|e| panic!("partial mode must survive the budget stop: {e}"));
    assert!(
        rel.len() < ROWS,
        "a 32 KiB budget cannot hold all {ROWS} rows, got {}",
        rel.len()
    );

    let integrity: Vec<_> = profile
        .warnings
        .iter()
        .filter(|w| w.message.starts_with("integrity:"))
        .collect();
    assert_eq!(
        integrity.len(),
        1,
        "a multi-page recovery must warn once per (endpoint, subquery), got {:?}",
        profile.warnings
    );
    assert!(
        integrity[0].message.contains("memory budget exhausted"),
        "the stop reason must be named: {}",
        integrity[0].message
    );

    let snap = engine.integrity().snapshot();
    let (_, s) = snap.iter().find(|(n, _)| n == "trunky").expect("stats");
    assert!(s.truncations_detected >= 1, "{s:?}");
    assert!(s.pages_fetched >= 2, "{s:?}");
    assert!(s.rows_recovered > 0, "{s:?}");
    // Stopping for our own budget is not the endpoint's lie: no strike.
    assert_eq!(s.count_divergences, 0, "{s:?}");
}

/// Recovery paging honours the query deadline: with a measurable per-
/// request network cost and a deadline far below the hundreds of pages a
/// full reconstruction needs, the query dies with `Timeout` instead of
/// paging forever.
#[test]
fn recovery_respects_the_deadline() {
    let federation = single_endpoint_rig(
        2000,
        FaultProfile::silent_truncate(CAP),
        NetworkProfile::geo_distributed(),
    );
    let engine = LusailEngine::new(
        federation,
        LusailConfig {
            timeout: Some(Duration::from_millis(80)),
            ..paranoid(ResultPolicy::Partial)
        },
    );
    let err = engine
        .execute(&parse_query("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }").unwrap())
        .unwrap_err();
    assert!(
        matches!(err, EngineError::Timeout(_)),
        "expected Timeout, got {err:?} (seed {})",
        chaos_seed()
    );
}

// ---- paging property ---------------------------------------------------

/// Seeded property: for arbitrary row counts, duplicate-heavy bags, page
/// sizes, and even overlapping re-fetches, the merged pages are
/// byte-identical to the unpaged result of the same ordered query. This
/// is the contract the recovery loop in `sape::execute` relies on.
#[test]
fn paged_refetch_merge_is_byte_identical_to_unpaged() {
    let mut rng = SplitMix64::seed_from_u64(chaos_seed() ^ 0x1f1d_ea11_cafe_f00d);
    for case in 0..25 {
        let n = rng.gen_range(0..300usize);
        let mut g = Graph::new();
        for i in 0..n {
            // A handful of distinct objects: projecting only ?o makes the
            // result a bag with heavy legitimate duplication.
            g.add(
                Term::iri(format!("http://x/s{i}")),
                Term::iri("http://x/p"),
                Term::integer(rng.gen_range(0..7i64)),
            );
        }
        let ep = SimulatedEndpoint::new("ep", Store::from_graph(&g), NetworkProfile::instant());
        let base = parse_query("SELECT ?o WHERE { ?s <http://x/p> ?o }").unwrap();
        let reference = ep
            .select_within(&recover::paged_query(&base, n + 1, 0), Deadline::none())
            .unwrap();

        let mut pages = Vec::new();
        let mut offset = 0usize;
        loop {
            let limit = rng.gen_range(1..=17usize);
            let page = ep
                .select_within(
                    &recover::paged_query(&base, limit, offset),
                    Deadline::none(),
                )
                .unwrap();
            let got = page.len();
            if got == 0 {
                break;
            }
            pages.push((offset, page));
            if offset > 0 && rng.gen_bool(0.25) {
                // An overlapping re-fetch of an already-covered window:
                // merge must drop it by offset arithmetic, not content.
                let back = rng.gen_range(0..offset);
                let re = ep
                    .select_within(&recover::paged_query(&base, limit, back), Deadline::none())
                    .unwrap();
                pages.push((back, re));
            }
            offset += got;
        }
        let merged = recover::merge_pages(reference.vars().to_vec(), pages);
        assert_eq!(
            results_json::serialize(&QueryResult::Solutions(merged)),
            results_json::serialize(&QueryResult::Solutions(reference.clone())),
            "case {case}: merged pages diverge from the unpaged result (seed {})",
            chaos_seed()
        );
    }
}
