//! Chaos suite: end-to-end federation behaviour under injected endpoint
//! faults. Three simulated endpoints hold disjoint shards of a two-pattern
//! chain; one of them is wrapped in a [`FaultyEndpoint`] so tests can take
//! it down, watch both result policies react, and verify the circuit
//! breaker re-closes once the outage clears.
//!
//! Every fault sequence is drawn from a seeded SplitMix64 stream; set
//! `LUSAIL_CHAOS_SEED` to replay a failing run (the `chaos` group in
//! `scripts/ci.sh` prints the seed it used on failure).

use lusail_core::{EngineError, LusailConfig, LusailEngine, ResultPolicy};
use lusail_federation::{
    BreakerConfig, BreakerState, Deadline, FaultProfile, FaultyConfig, FaultyEndpoint, Federation,
    NetworkProfile, SimulatedEndpoint, SparqlEndpoint,
};
use lusail_rdf::{Graph, Term};
use lusail_sparql::parse_query;
use lusail_store::Store;
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUERY: &str = "SELECT ?s ?d ?w WHERE { ?s <http://x/linked> ?d . ?d <http://x/weight> ?w }";

/// Rows each endpoint contributes to [`QUERY`].
const ROWS_PER_SHARD: usize = 10;

/// The endpoint the chaos tests take down.
const FAULTY_NAME: &str = "ep-2";

fn chaos_seed() -> u64 {
    std::env::var("LUSAIL_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// One endpoint's shard: `ROWS_PER_SHARD` link/weight chains over IRIs
/// namespaced by endpoint, so the join is local to each shard and every
/// result row is attributable to exactly one endpoint.
fn shard(idx: usize) -> Graph {
    let mut g = Graph::new();
    for i in 0..ROWS_PER_SHARD {
        let s = Term::iri(format!("http://ep{idx}.example.org/s{i}"));
        let d = Term::iri(format!("http://ep{idx}.example.org/d{i}"));
        g.add(s, Term::iri("http://x/linked"), d.clone());
        g.add(
            d,
            Term::iri("http://x/weight"),
            Term::integer((idx * ROWS_PER_SHARD + i) as i64),
        );
    }
    g
}

struct ChaosRig {
    federation: Federation,
    /// Kept outside the federation so tests can switch faults and read the
    /// breaker mid-run.
    faulty: Arc<FaultyEndpoint>,
}

/// Three endpoints on the given network; `ep-2` is wrapped in a
/// fault injector starting with `profile` active.
fn rig(network: NetworkProfile, profile: FaultProfile, config: FaultyConfig) -> ChaosRig {
    let mut endpoints: Vec<Arc<dyn SparqlEndpoint>> = (0..2)
        .map(|idx| {
            Arc::new(SimulatedEndpoint::new(
                format!("ep-{idx}"),
                Store::from_graph(&shard(idx)),
                network,
            )) as Arc<dyn SparqlEndpoint>
        })
        .collect();
    let inner = Arc::new(SimulatedEndpoint::new(
        FAULTY_NAME,
        Store::from_graph(&shard(2)),
        network,
    )) as Arc<dyn SparqlEndpoint>;
    let faulty = Arc::new(FaultyEndpoint::with_config(
        inner,
        chaos_seed(),
        profile,
        config,
    ));
    endpoints.push(faulty.clone() as Arc<dyn SparqlEndpoint>);
    ChaosRig {
        federation: Federation::new(endpoints),
        faulty,
    }
}

/// Breaker tuned for test pace: opens after two strikes, re-probes fast.
fn snappy_faults() -> FaultyConfig {
    FaultyConfig {
        retries: 1,
        backoff: Duration::from_micros(100),
        failure_latency: Duration::from_micros(200),
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(50),
            ..BreakerConfig::default()
        },
    }
}

fn engine(rig: &ChaosRig, policy: ResultPolicy) -> LusailEngine {
    LusailEngine::new(
        rig.federation.clone(),
        LusailConfig {
            result_policy: policy,
            ..LusailConfig::without_cache()
        },
    )
}

#[test]
fn fail_fast_names_dead_endpoint_within_twice_healthy_latency() {
    // The geo-distributed profile gives each round trip a measurable 4 ms
    // cost, so "healthy latency" spans several request waves and the
    // comparison below has structural (not statistical) slack: failing
    // fast on the first wave is necessarily cheaper than finishing all of
    // them.
    let network = NetworkProfile::geo_distributed();
    let q = parse_query(QUERY).unwrap();

    let healthy = rig(network, FaultProfile::none(), snappy_faults());
    let started = Instant::now();
    let rel = engine(&healthy, ResultPolicy::FailFast)
        .execute(&q)
        .unwrap();
    let healthy_latency = started.elapsed();
    assert_eq!(rel.len(), 3 * ROWS_PER_SHARD);

    let broken = rig(network, FaultProfile::hard_down(), snappy_faults());
    let started = Instant::now();
    let err = engine(&broken, ResultPolicy::FailFast)
        .execute(&q)
        .unwrap_err();
    let failing_latency = started.elapsed();

    match &err {
        EngineError::Endpoint(e) => {
            assert_eq!(e.endpoint, FAULTY_NAME, "error must name the dead endpoint");
        }
        other => panic!("expected a structured endpoint error, got {other:?}"),
    }
    assert!(
        failing_latency < healthy_latency * 2,
        "fail-fast took {failing_latency:?}, over 2x the healthy {healthy_latency:?} \
         (seed {})",
        chaos_seed()
    );
}

#[test]
fn partial_returns_reachable_subset_with_warnings_naming_dead_endpoint() {
    let rig = rig(
        NetworkProfile::local_cluster(),
        FaultProfile::hard_down(),
        snappy_faults(),
    );
    let q = parse_query(QUERY).unwrap();
    let (rel, profile) = engine(&rig, ResultPolicy::Partial)
        .execute_profiled(&q)
        .unwrap();

    // Exactly the two live shards' rows, nothing fabricated for ep-2.
    assert_eq!(rel.len(), 2 * ROWS_PER_SHARD, "seed {}", chaos_seed());
    let si = rel.index_of(&"s".into()).unwrap();
    for row in rel.rows() {
        let s = format!("{:?}", row[si]);
        assert!(
            !s.contains("ep2.example.org"),
            "row {s} leaked from the dead endpoint"
        );
    }

    // The degradation is explicit: warnings name the endpoint that was
    // skipped, and its breaker is open.
    assert!(
        !profile.warnings.is_empty(),
        "partial results must carry warnings"
    );
    assert!(
        profile.warnings.iter().all(|w| w.endpoint == FAULTY_NAME),
        "every warning should name {FAULTY_NAME}: {:?}",
        profile.warnings
    );
    let health = rig.faulty.health_snapshot();
    assert_eq!(health.breaker, BreakerState::Open);
    assert!(
        health.failures >= 2,
        "the outage should have recorded the strikes that opened the breaker"
    );
}

#[test]
fn breaker_recloses_and_full_results_return_after_faults_clear() {
    let rig = rig(
        NetworkProfile::local_cluster(),
        FaultProfile::hard_down(),
        snappy_faults(),
    );
    let q = parse_query(QUERY).unwrap();

    // Outage: partial mode rides it out, the breaker opens.
    let (rel, _) = engine(&rig, ResultPolicy::Partial)
        .execute_profiled(&q)
        .unwrap();
    assert_eq!(rel.len(), 2 * ROWS_PER_SHARD, "seed {}", chaos_seed());
    assert_eq!(rig.faulty.health_snapshot().breaker, BreakerState::Open);

    // The endpoint comes back; after the cooldown the next request is
    // admitted as the half-open probe and its success closes the breaker.
    rig.faulty.set_faults(FaultProfile::none());
    std::thread::sleep(snappy_faults().breaker.cooldown + Duration::from_millis(10));
    rig.faulty
        .execute_within(&q, Deadline::none())
        .expect("recovered endpoint should serve the half-open probe");
    assert_eq!(rig.faulty.health_snapshot().breaker, BreakerState::Closed);

    // Strict fail-fast now succeeds with all three shards again.
    let rel = engine(&rig, ResultPolicy::FailFast).execute(&q).unwrap();
    assert_eq!(rel.len(), 3 * ROWS_PER_SHARD);
}

#[test]
fn retry_budget_rides_out_intermittent_drops() {
    // A flaky (not dead) endpoint: each attempt drops 25% of the time, but
    // four retries make an all-attempts failure vanishingly rare, so even
    // fail-fast completes. The breaker threshold is lifted out of the way
    // so a short unlucky streak cannot open it mid-query.
    let flaky = FaultyConfig {
        retries: 4,
        backoff: Duration::from_micros(100),
        failure_latency: Duration::from_micros(200),
        breaker: BreakerConfig {
            failure_threshold: 64,
            ..BreakerConfig::default()
        },
    };
    let rig = rig(
        NetworkProfile::local_cluster(),
        FaultProfile {
            drop_rate: 0.25,
            ..FaultProfile::none()
        },
        flaky,
    );
    let q = parse_query(QUERY).unwrap();
    let rel = engine(&rig, ResultPolicy::FailFast)
        .execute(&q)
        .unwrap_or_else(|e| {
            panic!(
                "flaky endpoint exhausted retries (seed {}): {e}",
                chaos_seed()
            )
        });
    assert_eq!(rel.len(), 3 * ROWS_PER_SHARD, "seed {}", chaos_seed());
    assert!(
        rig.faulty.health_snapshot().retries > 0,
        "a 25% drop rate should have forced at least one retry (seed {})",
        chaos_seed()
    );
}
