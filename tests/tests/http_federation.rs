//! Loopback end-to-end tests for the wire-protocol subsystem: real
//! `lusail-server` instances on ephemeral ports, queried through
//! `HttpEndpoint` by the full Lusail engine (LADE decomposition + SAPE
//! scheduling). The HTTP path must produce solutions bit-identical to the
//! simulated in-process federation and to the merged-graph ground truth.

use integration::{assert_same_solutions, ground_truth};
use lusail_core::LusailEngine;
use lusail_federation::{Federation, HttpConfig, HttpEndpoint, NetworkProfile, SparqlEndpoint};
use lusail_rdf::{Graph, Literal, Term};
use lusail_server::{ServerConfig, ServerHandle, SparqlServer};
use lusail_store::Store;
use lusail_workloads::{federation_from_graphs, lubm, qfed};
use std::sync::Arc;

/// Start one `lusail-server` per endpoint graph and wire a federation of
/// HTTP clients to them. The handles keep the servers alive for the test.
fn http_federation(graphs: &[(String, Graph)]) -> (Vec<ServerHandle>, Federation) {
    let mut handles = Vec::new();
    let mut endpoints: Vec<Arc<dyn SparqlEndpoint>> = Vec::new();
    for (name, g) in graphs {
        let server =
            SparqlServer::bind("127.0.0.1:0", Store::from_graph(g), ServerConfig::default())
                .expect("bind ephemeral port");
        let handle = server.spawn();
        endpoints.push(Arc::new(
            HttpEndpoint::new(name.clone(), &handle.url()).expect("valid loopback URL"),
        ));
        handles.push(handle);
    }
    (handles, Federation::new(endpoints))
}

fn shutdown_all(handles: Vec<ServerHandle>) {
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn lubm_over_http_matches_simulated_federation() {
    let graphs = lubm::generate_all(&lubm::LubmConfig::with_universities(3));
    let (handles, http_fed) = http_federation(&graphs);
    assert!(
        handles.len() >= 3,
        "the e2e must span at least three server processes"
    );
    let sim_fed = federation_from_graphs(graphs.clone(), NetworkProfile::instant());

    // Default config = LADE decomposition + full SAPE scheduling.
    let http_engine = LusailEngine::new(http_fed.clone(), Default::default());
    let sim_engine = LusailEngine::new(sim_fed, Default::default());

    for q in lubm::queries() {
        let parsed = q.parse();
        let over_http = http_engine.execute(&parsed).expect(q.name);
        let simulated = sim_engine.execute(&parsed).expect(q.name);
        assert_same_solutions(
            &format!("{} http-vs-simulated", q.name),
            &over_http,
            &simulated,
        );
        assert_same_solutions(
            &format!("{} http-vs-ground-truth", q.name),
            &over_http,
            &ground_truth(&graphs, &parsed),
        );
    }
    let traffic = http_fed.total_traffic();
    assert!(
        traffic.requests > 0,
        "the engine must actually have gone over the wire"
    );
    assert!(traffic.bytes_received > 0);
    shutdown_all(handles);
}

#[test]
fn qfed_over_http_matches_simulated_federation() {
    let graphs = qfed::generate_all(&qfed::QfedConfig::default());
    let (handles, http_fed) = http_federation(&graphs);
    assert_eq!(handles.len(), 4, "QFed federates four life-science sources");
    let sim_fed = federation_from_graphs(graphs.clone(), NetworkProfile::instant());

    let http_engine = LusailEngine::new(http_fed, Default::default());
    let sim_engine = LusailEngine::new(sim_fed, Default::default());

    for q in qfed::queries() {
        let parsed = q.parse();
        let over_http = http_engine.execute(&parsed).expect(q.name);
        let simulated = sim_engine.execute(&parsed).expect(q.name);
        assert!(!over_http.is_empty(), "{} should return solutions", q.name);
        assert_same_solutions(
            &format!("{} http-vs-simulated", q.name),
            &over_http,
            &simulated,
        );
    }
    shutdown_all(handles);
}

#[test]
fn every_term_kind_survives_the_wire() {
    // A deliberately nasty graph: every term kind, JSON-hostile lexical
    // forms, and data split across two endpoints so the engine must join
    // over HTTP.
    let mut left = Graph::new();
    left.add(
        Term::iri("http://a/x?y=1&z=\"2\""),
        Term::iri("http://a/p"),
        Term::literal("line1\nline2\t\"quoted\\\""),
    );
    left.add(
        Term::iri("http://a/x?y=1&z=\"2\""),
        Term::iri("http://a/q"),
        Term::bnode("b0"),
    );
    let mut right = Graph::new();
    right.add(
        Term::iri("http://a/x?y=1&z=\"2\""),
        Term::iri("http://a/r"),
        Term::Literal(Literal::lang("grüße 😀", "de")),
    );
    right.add(
        Term::iri("http://a/x?y=1&z=\"2\""),
        Term::iri("http://a/s"),
        Term::integer(-42),
    );
    let graphs = vec![("left".to_string(), left), ("right".to_string(), right)];

    let (handles, http_fed) = http_federation(&graphs);
    let engine = LusailEngine::new(http_fed, Default::default());
    let query = lusail_sparql::parse_query(
        "SELECT ?v ?b ?l ?n WHERE { \
           ?x <http://a/p> ?v . ?x <http://a/q> ?b . \
           ?x <http://a/r> ?l . ?x <http://a/s> ?n }",
    )
    .unwrap();
    let rel = engine.execute(&query).unwrap();
    assert_same_solutions("nasty-terms", &rel, &ground_truth(&graphs, &query));
    let row = &rel.rows()[0];
    assert_eq!(row[0], Some(Term::literal("line1\nline2\t\"quoted\\\"")));
    assert_eq!(row[2], Some(Term::Literal(Literal::lang("grüße 😀", "de"))));
    assert_eq!(row[3], Some(Term::integer(-42)));
    shutdown_all(handles);
}

#[test]
fn oversized_query_surfaces_as_endpoint_error() {
    let mut g = Graph::new();
    g.add(
        Term::iri("http://x/s"),
        Term::iri("http://x/p"),
        Term::iri("http://x/o"),
    );
    let server = SparqlServer::bind(
        "127.0.0.1:0",
        Store::from_graph(&g),
        ServerConfig {
            max_query_bytes: 128,
            ..Default::default()
        },
    )
    .unwrap();
    let handle = server.spawn();
    let ep = HttpEndpoint::new("tiny", &handle.url()).unwrap();

    let small = lusail_sparql::parse_query("ASK { ?s ?p ?o }").unwrap();
    assert!(ep.ask(&small).unwrap());

    let big = lusail_sparql::parse_query(&format!(
        "SELECT ?s WHERE {{ ?s <http://very.long.example.org/{}> ?o }}",
        "p".repeat(200)
    ))
    .unwrap();
    let err = ep.execute(&big).unwrap_err();
    assert_eq!(err.endpoint, "tiny");
    assert!(err.message.contains("413"), "{err}");
    // 4xx is the server rejecting the query — the client must not retry.
    assert_eq!(ep.traffic().requests, 2);
    handle.shutdown();
}

#[test]
fn dead_endpoint_fails_fast_with_transport_error() {
    // Bind then immediately free a port so nothing listens on it.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let ep = HttpEndpoint::new("ghost", &format!("http://127.0.0.1:{port}/sparql"))
        .unwrap()
        .with_config(HttpConfig {
            retries: 1,
            backoff: std::time::Duration::from_millis(1),
            ..Default::default()
        });
    let q = lusail_sparql::parse_query("ASK { ?s ?p ?o }").unwrap();
    let err = ep.execute(&q).unwrap_err();
    assert!(err.message.contains("2 attempts"), "{err}");
    assert!(err.message.contains("transport error"), "{err}");
}
