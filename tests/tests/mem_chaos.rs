//! Memory-budget chaos suite: a hostile endpoint that answers every
//! subquery with millions of well-formed rows (a "result bomb") must not
//! drive the engine past its `--memory-budget`. Fail-fast surfaces a
//! structured `BudgetExceeded` naming the endpoint; `--partial` degrades
//! to a truncated, visibly-warned result; and the spill path of the
//! budgeted join returns exactly what the in-memory join would.
//!
//! Like `chaos.rs`, the fault stream is seeded: set `LUSAIL_CHAOS_SEED`
//! to replay a failing run (the `mem-chaos` group in `scripts/ci.sh`
//! prints the seed it used on failure).

use lusail_core::sape::join::budgeted_join;
use lusail_core::{EngineError, LusailConfig, LusailEngine, MemoryBudget, ResultPolicy};
use lusail_federation::{
    FaultProfile, FaultyConfig, FaultyEndpoint, Federation, NetworkProfile, RequestHandler,
    SimulatedEndpoint, SparqlEndpoint,
};
use lusail_rdf::{Graph, Term};
use lusail_sparql::ast::Variable;
use lusail_sparql::parse_query;
use lusail_sparql::solution::{Relation, Row};
use lusail_store::Store;
use std::sync::Arc;

const QUERY: &str = "SELECT ?s ?d ?w WHERE { ?s <http://x/linked> ?d . ?d <http://x/weight> ?w }";

/// Rows each endpoint contributes to [`QUERY`].
const ROWS_PER_SHARD: usize = 10;

/// The endpoint wrapped in the fault injector.
const FAULTY_NAME: &str = "ep-2";

/// The per-query budget the bomb must not breach.
const BUDGET: usize = 8 << 20;

/// Rows per bombed response: ~90 wire bytes each, so one response is
/// several times [`BUDGET`].
const BOMB_ROWS: usize = 200_000;

fn chaos_seed() -> u64 {
    std::env::var("LUSAIL_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn shard(idx: usize) -> Graph {
    let mut g = Graph::new();
    for i in 0..ROWS_PER_SHARD {
        let s = Term::iri(format!("http://ep{idx}.example.org/s{i}"));
        let d = Term::iri(format!("http://ep{idx}.example.org/d{i}"));
        g.add(s, Term::iri("http://x/linked"), d.clone());
        g.add(
            d,
            Term::iri("http://x/weight"),
            Term::integer((idx * ROWS_PER_SHARD + i) as i64),
        );
    }
    g
}

/// Three endpoints; `ep-2` answers every plain SELECT with `BOMB_ROWS`
/// rows when `profile` is a result bomb.
fn rig(profile: FaultProfile) -> Federation {
    let network = NetworkProfile::instant();
    let mut endpoints: Vec<Arc<dyn SparqlEndpoint>> = (0..2)
        .map(|idx| {
            Arc::new(SimulatedEndpoint::new(
                format!("ep-{idx}"),
                Store::from_graph(&shard(idx)),
                network,
            )) as Arc<dyn SparqlEndpoint>
        })
        .collect();
    let inner = Arc::new(SimulatedEndpoint::new(
        FAULTY_NAME,
        Store::from_graph(&shard(2)),
        network,
    )) as Arc<dyn SparqlEndpoint>;
    endpoints.push(Arc::new(FaultyEndpoint::with_config(
        inner,
        chaos_seed(),
        profile,
        FaultyConfig::default(),
    )) as Arc<dyn SparqlEndpoint>);
    Federation::new(endpoints)
}

fn engine(federation: Federation, policy: ResultPolicy, budget: Option<usize>) -> LusailEngine {
    LusailEngine::new(
        federation,
        LusailConfig {
            result_policy: policy,
            memory_budget: budget,
            ..LusailConfig::without_cache()
        },
    )
}

/// Fail-fast under a bombed endpoint: execution stops with a structured
/// `BudgetExceeded` that names the offending endpoint, instead of
/// materializing the bomb.
#[test]
fn fail_fast_budget_exceeded_names_the_bombed_endpoint() {
    let q = parse_query(QUERY).unwrap();
    let eng = engine(
        rig(FaultProfile::result_bomb(BOMB_ROWS)),
        ResultPolicy::FailFast,
        Some(BUDGET),
    );
    let err = eng.execute(&q).unwrap_err();
    match &err {
        EngineError::BudgetExceeded {
            limit, endpoint, ..
        } => {
            assert_eq!(*limit, BUDGET);
            assert_eq!(endpoint, FAULTY_NAME);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    assert!(err.to_string().contains("memory budget"), "{err}");
}

/// `--partial` under the same bomb: the run completes, accounting never
/// exceeds the budget, the truncation is warned per subquery against the
/// bombed endpoint, and no bomb row leaks into the answer.
#[test]
fn partial_mode_truncates_the_bomb_within_budget() {
    let q = parse_query(QUERY).unwrap();
    let eng = engine(
        rig(FaultProfile::result_bomb(BOMB_ROWS)),
        ResultPolicy::Partial,
        Some(BUDGET),
    );
    let (rel, profile) = eng.execute_profiled(&q).unwrap();

    // (a) peak accounted bytes stay within budget plus at most one
    // admission chunk of slack (`try_charge` rejects without booking, so
    // in practice the peak never crosses the limit at all).
    let slack = lusail_core::run::ADMISSION_CHUNK_ROWS * 128;
    let peak = profile.memory.peak_bytes;
    assert!(peak > 0, "bomb admission must be accounted");
    assert!(
        peak <= BUDGET + slack,
        "peak {peak} exceeds budget {BUDGET} (+{slack} slack)"
    );
    assert!(profile.memory.wave_peak_bytes > 0);

    // (b) the degradation is visible and attributed.
    assert!(
        profile
            .warnings
            .iter()
            .any(|w| w.endpoint == FAULTY_NAME && w.message.contains("memory budget")),
        "expected a memory-budget warning naming {FAULTY_NAME}: {:?}",
        profile.warnings
    );

    // Bomb rows share no join key, so none may survive into the answer;
    // the healthy endpoints' chains must all be there.
    let wi = rel.index_of(&Variable::new("w")).unwrap();
    for row in rel.rows() {
        for cell in row.iter().flatten() {
            assert!(
                !format!("{cell:?}").contains("bomb.example.org"),
                "bomb row leaked into the answer"
            );
        }
        let _ = &row[wi];
    }
    for ep in 0..2 {
        let s0 = Term::iri(format!("http://ep{ep}.example.org/s0"));
        assert!(
            rel.rows().iter().any(|r| r[0].as_ref() == Some(&s0)),
            "healthy endpoint ep-{ep} missing from the partial answer"
        );
    }
}

/// Without a budget the bomb is materialized (the pre-budget behaviour);
/// with one, the accounted peak is bounded. This pins that the budget is
/// what makes the difference, not the bomb being too small to matter.
#[test]
fn budget_is_what_bounds_the_bomb() {
    let q = parse_query(QUERY).unwrap();
    let eng = engine(
        rig(FaultProfile::result_bomb(50_000)),
        ResultPolicy::Partial,
        None,
    );
    let (_, unbounded) = eng.execute_profiled(&q).unwrap();
    assert!(
        unbounded.memory.peak_bytes > BUDGET / 2,
        "a 50k-row bomb should dominate accounting when unbounded: {}",
        unbounded.memory.peak_bytes
    );

    let eng = engine(
        rig(FaultProfile::result_bomb(50_000)),
        ResultPolicy::Partial,
        Some(1 << 20),
    );
    let (_, bounded) = eng.execute_profiled(&q).unwrap();
    assert!(
        bounded.memory.peak_bytes <= 1 << 20,
        "budgeted peak {} exceeds 1 MiB",
        bounded.memory.peak_bytes
    );
}

/// Engine-side row caps (`--max-result-rows` past the transport): fail
/// fast rejects the oversized subquery result naming the cap; partial
/// truncates with a warning.
#[test]
fn engine_row_cap_rejects_or_truncates() {
    let q = parse_query(QUERY).unwrap();
    let config = |policy| LusailConfig {
        result_policy: policy,
        max_result_rows: Some(5),
        ..LusailConfig::without_cache()
    };

    let eng = LusailEngine::new(rig(FaultProfile::none()), config(ResultPolicy::FailFast));
    let err = eng.execute(&q).unwrap_err();
    assert!(err.to_string().contains("--max-result-rows"), "{err}");

    let eng = LusailEngine::new(rig(FaultProfile::none()), config(ResultPolicy::Partial));
    let (rel, profile) = eng.execute_profiled(&q).unwrap();
    assert!(
        rel.len() < 3 * ROWS_PER_SHARD,
        "cap of 5 rows per response must shrink the 30-row answer"
    );
    assert!(
        profile
            .warnings
            .iter()
            .any(|w| w.message.contains("--max-result-rows")),
        "{:?}",
        profile.warnings
    );
}

/// Acceptance for the spill path on healthy data: a join forced to spill
/// to sorted temp-file runs returns exactly the rows of the in-memory
/// join.
#[test]
fn spilling_join_is_identical_to_in_memory_join() {
    fn sorted_rows(rel: &Relation) -> Vec<Row> {
        let mut rows = rel.rows().to_vec();
        rows.sort();
        rows
    }
    let mut a = Relation::new(vec![Variable::new("x"), Variable::new("y")]);
    let mut b = Relation::new(vec![Variable::new("y"), Variable::new("z")]);
    for i in 0..6000 {
        a.push(vec![
            Some(Term::iri(format!("http://x.example.org/x{i}"))),
            Some(Term::iri(format!("http://x.example.org/k{i}"))),
        ]);
        // Keys k3000..k8999: half of `b` matches half of `a`.
        b.push(vec![
            Some(Term::iri(format!("http://x.example.org/k{}", i + 3000))),
            Some(Term::iri(format!("http://x.example.org/z{i}"))),
        ]);
    }
    let expected = a.join(&b);
    assert!(!expected.is_empty(), "the overlap must produce rows");

    let handler = RequestHandler::new(2);
    let budget = MemoryBudget::new(Some(512 * 1024));
    let spilled = budgeted_join(&a, &b, &handler, &budget, false).unwrap();
    assert!(!spilled.truncated);
    assert!(
        budget.stats().spill_count > 0,
        "a 512 KiB budget over ~400 KiB sides must spill"
    );
    assert_eq!(spilled.relation.vars(), expected.vars());
    assert_eq!(sorted_rows(&spilled.relation), sorted_rows(&expected));
    assert!(budget.stats().peak_bytes <= 512 * 1024);
}
