//! Cross-crate correctness: every federated engine must return exactly the
//! solutions a single store holding the merged decentralized graph returns
//! (Lemmas 1 and 2 of the paper promise this for Lusail).

use integration::{assert_same_solutions, ground_truth};
use lusail_baselines::{FedX, FedXConfig, FederatedEngine, HiBiscus, Splendid};
use lusail_core::{DelayThreshold, LusailConfig, LusailEngine, SapeMode};
use lusail_federation::NetworkProfile;
use lusail_workloads::{bio2rdf, federation_from_graphs, largerdf, lubm, qfed};

fn lusail(graphs: Vec<(String, lusail_rdf::Graph)>) -> LusailEngine {
    LusailEngine::new(
        federation_from_graphs(graphs, NetworkProfile::instant()),
        LusailConfig::default(),
    )
}

// ---- LUBM -------------------------------------------------------------

#[test]
fn lusail_matches_ground_truth_on_lubm() {
    let cfg = lubm::LubmConfig::with_universities(4);
    let graphs = lubm::generate_all(&cfg);
    let engine = lusail(graphs.clone());
    for q in lubm::queries() {
        let query = q.parse();
        let actual = engine.execute(&query).unwrap();
        let expected = ground_truth(&graphs, &query);
        assert_same_solutions(q.name, &actual, &expected);
        assert!(!actual.is_empty(), "{} must have answers", q.name);
    }
}

#[test]
fn lusail_matches_ground_truth_on_qa() {
    let cfg = lubm::LubmConfig::with_universities(3);
    let graphs = lubm::generate_all(&cfg);
    let engine = lusail(graphs.clone());
    let q = lubm::query_qa();
    let query = q.parse();
    let actual = engine.execute(&query).unwrap();
    let expected = ground_truth(&graphs, &query);
    assert_same_solutions("Qa", &actual, &expected);
}

#[test]
fn all_engines_agree_on_lubm() {
    let cfg = lubm::LubmConfig::with_universities(2);
    let graphs = lubm::generate_all(&cfg);
    let engines: Vec<Box<dyn FederatedEngine>> = vec![
        Box::new(lusail(graphs.clone())),
        Box::new(FedX::new(
            federation_from_graphs(graphs.clone(), NetworkProfile::instant()),
            FedXConfig::default(),
        )),
        Box::new(Splendid::new(federation_from_graphs(
            graphs.clone(),
            NetworkProfile::instant(),
        ))),
        Box::new(HiBiscus::new(
            federation_from_graphs(graphs.clone(), NetworkProfile::instant()),
            FedXConfig::default(),
        )),
    ];
    for q in lubm::queries() {
        let query = q.parse();
        let expected = ground_truth(&graphs, &query);
        for engine in &engines {
            let actual = engine
                .execute(&query)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", engine.name(), q.name));
            assert_same_solutions(
                &format!("{} on {}", engine.name(), q.name),
                &actual,
                &expected,
            );
        }
    }
}

// ---- QFed -------------------------------------------------------------

#[test]
fn lusail_matches_ground_truth_on_qfed() {
    let cfg = qfed::QfedConfig {
        drugs: 80,
        diseases: 25,
        side_effects: 40,
        labels: 40,
        seed: 7,
    };
    let graphs = qfed::generate_all(&cfg);
    let engine = lusail(graphs.clone());
    for q in qfed::queries() {
        let query = q.parse();
        let actual = engine.execute(&query).unwrap();
        let expected = ground_truth(&graphs, &query);
        assert_same_solutions(q.name, &actual, &expected);
        assert!(!actual.is_empty(), "{} must have answers", q.name);
    }
}

#[test]
fn fedx_matches_lusail_on_qfed_base_queries() {
    let cfg = qfed::QfedConfig {
        drugs: 50,
        diseases: 15,
        side_effects: 25,
        labels: 25,
        seed: 7,
    };
    let graphs = qfed::generate_all(&cfg);
    let engine = lusail(graphs.clone());
    let fedx = FedX::new(
        federation_from_graphs(graphs.clone(), NetworkProfile::instant()),
        FedXConfig::default(),
    );
    for q in qfed::queries() {
        let query = q.parse();
        let a = engine.execute(&query).unwrap();
        let b = fedx.execute(&query).unwrap();
        assert_same_solutions(&format!("FedX vs Lusail on {}", q.name), &b, &a);
    }
}

// ---- LargeRDFBench -----------------------------------------------------

#[test]
fn lusail_matches_ground_truth_on_largerdfbench() {
    let cfg = largerdf::LargeRdfConfig {
        scale: 0.4,
        ..Default::default()
    };
    let graphs = largerdf::generate_all(&cfg);
    let engine = lusail(graphs.clone());
    for q in largerdf::all_queries() {
        let query = q.parse();
        let actual = engine
            .execute(&query)
            .unwrap_or_else(|e| panic!("Lusail failed on {}: {e}", q.name));
        let expected = ground_truth(&graphs, &query);
        // C4 carries LIMIT: row counts match but the chosen rows may
        // differ between evaluation orders; compare counts only.
        if q.name == "C4" {
            assert_eq!(actual.len(), expected.len(), "C4 row count");
            continue;
        }
        assert_same_solutions(q.name, &actual, &expected);
        assert!(!actual.is_empty(), "{} must have answers", q.name);
    }
}

#[test]
fn baselines_reject_only_the_disjoint_queries() {
    let cfg = largerdf::LargeRdfConfig {
        scale: 0.2,
        ..Default::default()
    };
    let graphs = largerdf::generate_all(&cfg);
    let fedx = FedX::new(
        federation_from_graphs(graphs.clone(), NetworkProfile::instant()),
        FedXConfig::default(),
    );
    for q in largerdf::all_queries() {
        let query = q.parse();
        let outcome = fedx.execute(&query);
        let disjoint = matches!(q.name, "C5" | "B5" | "B6");
        match (disjoint, outcome) {
            (true, Err(lusail_core::EngineError::Unsupported(_))) => {}
            (true, other) => panic!("{} should be unsupported by FedX, got {other:?}", q.name),
            (false, Ok(_)) => {}
            (false, Err(e)) => panic!("FedX failed on supported query {}: {e}", q.name),
        }
    }
}

#[test]
fn lusail_supports_the_disjoint_queries() {
    // The paper: "C5 contains two disjoint subgraphs joined by a filter
    // variable, a query not supported by Lusail's competitors."
    let cfg = largerdf::LargeRdfConfig {
        scale: 0.3,
        ..Default::default()
    };
    let graphs = largerdf::generate_all(&cfg);
    let engine = lusail(graphs.clone());
    for name in ["C5", "B5", "B6"] {
        let q = largerdf::all_queries()
            .into_iter()
            .find(|q| q.name == name)
            .unwrap();
        let query = q.parse();
        let actual = engine.execute(&query).unwrap();
        let expected = ground_truth(&graphs, &query);
        assert_same_solutions(name, &actual, &expected);
        assert!(!actual.is_empty(), "{name} must have answers");
    }
}

// ---- Bio2RDF ------------------------------------------------------------

#[test]
fn lusail_matches_ground_truth_on_bio2rdf() {
    let cfg = bio2rdf::Bio2RdfConfig::default();
    let graphs = bio2rdf::generate_all(&cfg);
    let engine = lusail(graphs.clone());
    for q in bio2rdf::queries() {
        let query = q.parse();
        let actual = engine.execute(&query).unwrap();
        let expected = ground_truth(&graphs, &query);
        assert_same_solutions(q.name, &actual, &expected);
    }
}

// ---- Configuration space -------------------------------------------------

#[test]
fn every_threshold_and_mode_is_correct_on_qa() {
    let cfg = lubm::LubmConfig::with_universities(3);
    let graphs = lubm::generate_all(&cfg);
    let q = lubm::query_qa().parse();
    let expected = ground_truth(&graphs, &q);
    for threshold in [
        DelayThreshold::Mu,
        DelayThreshold::MuSigma,
        DelayThreshold::Mu2Sigma,
        DelayThreshold::OutliersOnly,
    ] {
        for mode in [SapeMode::Full, SapeMode::LadeOnly] {
            for block in [3, 512] {
                let engine = LusailEngine::new(
                    federation_from_graphs(graphs.clone(), NetworkProfile::instant()),
                    LusailConfig {
                        delay_threshold: threshold,
                        sape_mode: mode,
                        bound_block_size: block,
                        ..Default::default()
                    },
                );
                let actual = engine.execute(&q).unwrap();
                assert_same_solutions(
                    &format!("{threshold:?}/{mode:?}/block{block}"),
                    &actual,
                    &expected,
                );
            }
        }
    }
}

#[test]
fn cache_disabled_still_correct() {
    let cfg = lubm::LubmConfig::with_universities(2);
    let graphs = lubm::generate_all(&cfg);
    let engine = LusailEngine::new(
        federation_from_graphs(graphs.clone(), NetworkProfile::instant()),
        LusailConfig::without_cache(),
    );
    for q in lubm::queries() {
        let query = q.parse();
        let actual = engine.execute(&query).unwrap();
        let expected = ground_truth(&graphs, &query);
        assert_same_solutions(q.name, &actual, &expected);
    }
}

#[test]
fn network_profile_does_not_change_results() {
    let cfg = lubm::LubmConfig::with_universities(2);
    let graphs = lubm::generate_all(&cfg);
    let q = lubm::queries().remove(3).parse(); // Q4, cross-endpoint
    let instant = lusail(graphs.clone()).execute(&q).unwrap();
    let geo = LusailEngine::new(
        federation_from_graphs(graphs, NetworkProfile::geo_distributed()),
        LusailConfig::default(),
    )
    .execute(&q)
    .unwrap();
    assert_same_solutions("geo vs instant", &geo, &instant);
}
