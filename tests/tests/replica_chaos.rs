//! Replica chaos suite: end-to-end federation behaviour when endpoints are
//! backed by replica groups and members die or slow down mid-query.
//!
//! The headline property: a LUBM query over a group with a dead (or dying)
//! member returns rows *identical* to the all-healthy run, with **zero**
//! `ExecutionWarning`s — failover hides the outage entirely, unlike partial
//! mode, which surfaces it as missing rows plus warnings. A fully dead group
//! still fails fast with a structured error naming every member tried, and a
//! slow member is rescued by hedging within the ≤2× amplification bound.
//!
//! Fault sequences are drawn from a seeded SplitMix64 stream; set
//! `LUSAIL_CHAOS_SEED` to replay a failing run (the `replica-chaos` group in
//! `scripts/ci.sh` prints the seed it used on failure).

use integration::{assert_same_solutions, ground_truth};
use lusail_core::{EngineError, LusailConfig, LusailEngine, ResultPolicy};
use lusail_federation::{
    BreakerConfig, FaultProfile, FaultyConfig, FaultyEndpoint, Federation, NetworkProfile,
    ReplicaConfig, ReplicaGroup, SimulatedEndpoint, SparqlEndpoint,
};
use lusail_sparql::parse_query;
use lusail_store::Store;
use lusail_workloads::lubm::{generate_all, queries, LubmConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn chaos_seed() -> u64 {
    std::env::var("LUSAIL_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Replica-member fault handling tuned for failing over fast: no in-member
/// retries (the group's failover IS the retry), sub-millisecond failure
/// latency, and a breaker that opens after two strikes so later waves stop
/// dialing the dead member at all.
fn fast_failover_faults() -> FaultyConfig {
    FaultyConfig {
        retries: 0,
        backoff: Duration::ZERO,
        failure_latency: Duration::from_micros(200),
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(30),
            ..BreakerConfig::default()
        },
    }
}

/// A plain healthy member endpoint.
fn member(name: String, store: Store, network: NetworkProfile) -> Arc<dyn SparqlEndpoint> {
    Arc::new(SimulatedEndpoint::new(name, store, network))
}

/// A member wrapped in a fault injector starting with `profile` active.
fn faulty_member(
    name: String,
    store: Store,
    network: NetworkProfile,
    profile: FaultProfile,
) -> Arc<dyn SparqlEndpoint> {
    let inner = member(name, store, network);
    Arc::new(FaultyEndpoint::with_config(
        inner,
        chaos_seed(),
        profile,
        fast_failover_faults(),
    ))
}

struct ReplicaRig {
    federation: Federation,
    /// One group per LUBM endpoint, kept out so tests can read stats.
    groups: Vec<Arc<ReplicaGroup>>,
}

/// A federation of two-member replica groups over the LUBM graphs. The
/// `fault` callback decides, per (endpoint index, member index), which
/// fault profile to inject — `None` means a plain healthy member. Member 0
/// is the initially preferred one (ranking is index-stable before any
/// health history exists), so injecting faults there forces failover.
fn rig(
    universities: usize,
    network: NetworkProfile,
    config: ReplicaConfig,
    fault: impl Fn(usize, usize) -> Option<FaultProfile>,
) -> (ReplicaRig, Vec<(String, lusail_rdf::Graph)>) {
    let graphs = generate_all(&LubmConfig::with_universities(universities));
    let mut endpoints: Vec<Arc<dyn SparqlEndpoint>> = Vec::new();
    let mut groups = Vec::new();
    for (e, (name, graph)) in graphs.iter().enumerate() {
        let store = Store::from_graph(graph);
        let members: Vec<Arc<dyn SparqlEndpoint>> = (0..2)
            .map(|m| {
                let member_name = format!("{name}/r{m}");
                match fault(e, m) {
                    Some(profile) => faulty_member(member_name, store.clone(), network, profile),
                    None => member(member_name, store.clone(), network),
                }
            })
            .collect();
        let group = Arc::new(ReplicaGroup::new(name.clone(), members, config));
        groups.push(group.clone());
        endpoints.push(group as Arc<dyn SparqlEndpoint>);
    }
    (
        ReplicaRig {
            federation: Federation::new(endpoints),
            groups,
        },
        graphs,
    )
}

fn engine(rig: &ReplicaRig, policy: ResultPolicy) -> LusailEngine {
    LusailEngine::new(
        rig.federation.clone(),
        LusailConfig {
            result_policy: policy,
            ..LusailConfig::without_cache()
        },
    )
}

/// Headline: one dead replica member on the preferred slot of every group.
/// The run must produce rows identical to the all-healthy run with zero
/// warnings (failover hides the outage — partial mode would instead drop
/// the shard and warn), within 2x the healthy wall-clock.
#[test]
fn dead_replica_member_is_invisible_to_results_and_warnings() {
    // Geo-distributed latency gives every healthy round trip a measurable
    // 4 ms cost, so the 2x comparison has structural slack: a failed
    // dispatch costs ~0.2 ms and the breaker stops them after two strikes.
    let network = NetworkProfile::geo_distributed();
    let q = parse_query(&queries()[1].text).unwrap();

    let (healthy, graphs) = rig(2, network, ReplicaConfig::default(), |_, _| None);
    let started = Instant::now();
    let baseline = engine(&healthy, ResultPolicy::FailFast)
        .execute(&q)
        .unwrap();
    let healthy_latency = started.elapsed();
    assert_same_solutions("healthy replica run", &baseline, &ground_truth(&graphs, &q));

    let (broken, _) = rig(2, network, ReplicaConfig::default(), |_, m| {
        (m == 0).then(FaultProfile::hard_down)
    });
    let started = Instant::now();
    let (rel, profile) = engine(&broken, ResultPolicy::Partial)
        .execute_profiled(&q)
        .unwrap();
    let failover_latency = started.elapsed();

    assert_same_solutions("dead-member replica run", &rel, &baseline);
    assert!(
        profile.warnings.is_empty(),
        "failover must hide the outage, got warnings (seed {}): {:?}",
        chaos_seed(),
        profile.warnings
    );
    let failovers: u64 = broken.groups.iter().map(|g| g.stats().failovers).sum();
    assert!(
        failovers > 0,
        "the dead preferred members should have forced failovers (seed {})",
        chaos_seed()
    );
    assert!(
        failover_latency < healthy_latency * 2,
        "failover run took {failover_latency:?}, over 2x the healthy {healthy_latency:?} \
         (seed {})",
        chaos_seed()
    );
}

/// A member that dies *mid-run* — after serving its first few requests —
/// is equally invisible: the group fails over on the first post-death
/// dispatch and later waves go straight to the survivor.
#[test]
fn member_killed_mid_wave_fails_over_without_losing_rows() {
    let q = parse_query(&queries()[1].text).unwrap();
    let (broken, graphs) = rig(
        2,
        NetworkProfile::local_cluster(),
        ReplicaConfig::default(),
        |_, m| (m == 0).then(|| FaultProfile::dies_after(3)),
    );
    let (rel, profile) = engine(&broken, ResultPolicy::Partial)
        .execute_profiled(&q)
        .unwrap();
    assert_same_solutions("mid-wave death run", &rel, &ground_truth(&graphs, &q));
    assert!(
        profile.warnings.is_empty(),
        "failover must hide the mid-wave death, got (seed {}): {:?}",
        chaos_seed(),
        profile.warnings
    );
    let stats: Vec<_> = broken.groups.iter().map(|g| g.stats()).collect();
    assert!(
        stats.iter().any(|s| s.failovers > 0),
        "dying members should have forced failovers (seed {}): {stats:?}",
        chaos_seed()
    );
}

/// When *every* member of a group is dead, the query fails fast with a
/// structured error naming the group and each member tried — no hanging,
/// no fabricated rows.
#[test]
fn fully_dead_group_fails_fast_naming_every_member() {
    let q = parse_query(&queries()[1].text).unwrap();
    let (broken, _) = rig(
        2,
        NetworkProfile::local_cluster(),
        ReplicaConfig::default(),
        |e, _| (e == 0).then(FaultProfile::hard_down),
    );
    let dead_group = broken.groups[0].clone();
    let started = Instant::now();
    let err = engine(&broken, ResultPolicy::FailFast)
        .execute(&q)
        .unwrap_err();
    let elapsed = started.elapsed();

    match &err {
        EngineError::Endpoint(e) => {
            assert_eq!(
                e.endpoint,
                dead_group.name(),
                "error must name the dead group (seed {})",
                chaos_seed()
            );
            for m in dead_group.members() {
                assert!(
                    e.message.contains(m.name()),
                    "error must name member {:?} (seed {}): {}",
                    m.name(),
                    chaos_seed(),
                    e.message
                );
            }
        }
        other => panic!("expected a structured endpoint error, got {other:?}"),
    }
    // Fail-fast: both members cost ~0.2 ms per failed dispatch and the
    // breakers open after two strikes, so the whole failure is quick.
    assert!(
        elapsed < Duration::from_secs(5),
        "fully dead group took {elapsed:?} to fail (seed {})",
        chaos_seed()
    );
}

/// A slow-but-alive preferred member is rescued by hedging: the duplicate
/// launched on the fast member wins, results stay correct, and request
/// amplification stays within the 2x bound.
#[test]
fn hedging_rescues_slow_member_within_amplification_bound() {
    let q = parse_query(&queries()[1].text).unwrap();
    let graphs = generate_all(&LubmConfig::with_universities(1));
    let (name, graph) = &graphs[0];
    let store = Store::from_graph(graph);
    // Member 0 (initially preferred: no health history, index-stable rank)
    // pays geo latency on every request; member 1 is on the fast local
    // network. Hedging after 1 ms reaches the fast member long before the
    // slow one responds.
    let slow = member(
        format!("{name}/r0"),
        store.clone(),
        NetworkProfile::geo_distributed(),
    );
    let fast = member(
        format!("{name}/r1"),
        store.clone(),
        NetworkProfile::local_cluster(),
    );
    let group = Arc::new(ReplicaGroup::new(
        name.clone(),
        vec![slow, fast],
        ReplicaConfig {
            hedge_after: Some(Duration::from_millis(1)),
            ..ReplicaConfig::default()
        },
    ));
    let rig = ReplicaRig {
        federation: Federation::new(vec![group.clone() as Arc<dyn SparqlEndpoint>]),
        groups: vec![group.clone()],
    };
    let rel = engine(&rig, ResultPolicy::FailFast).execute(&q).unwrap();
    assert_same_solutions("hedged run", &rel, &ground_truth(&graphs, &q));

    let stats = group.stats();
    assert!(
        stats.hedges_launched > 0,
        "the slow member should have triggered hedges (seed {}): {stats:?}",
        chaos_seed()
    );
    assert!(
        stats.hedges_won > 0,
        "the fast member should have won hedges (seed {}): {stats:?}",
        chaos_seed()
    );
    assert!(
        stats.dispatches <= 2 * stats.logical_requests,
        "hedging must stay within 2x amplification (seed {}): {stats:?}",
        chaos_seed()
    );
}
