//! Shared helpers for the cross-crate integration tests.

use lusail_rdf::Graph;
use lusail_sparql::ast::Query;
use lusail_sparql::solution::Relation;
use lusail_store::{Evaluator, Store};

/// Evaluate a query over the *merged* graph of all endpoints — the ground
/// truth a federated engine must reproduce (the decentralized graph's
/// semantics is exactly the union of the endpoint graphs).
pub fn ground_truth(graphs: &[(String, Graph)], query: &Query) -> Relation {
    let mut merged = Graph::new();
    for (_, g) in graphs {
        merged.extend(g.clone());
    }
    let store = Store::from_graph(&merged);
    Evaluator::new(&store).query(query).into_solutions()
}

/// Compare two relations as bags, ignoring row and column order.
pub fn assert_same_solutions(label: &str, actual: &Relation, expected: &Relation) {
    assert_eq!(
        actual.len(),
        expected.len(),
        "{label}: row count mismatch (actual {} vs expected {})",
        actual.len(),
        expected.len()
    );
    // Align columns: project the actual onto the expected header order.
    let projected = actual.project(expected.vars());
    let mut a: Vec<_> = projected.rows().to_vec();
    let mut e: Vec<_> = expected.rows().to_vec();
    a.sort();
    e.sort();
    assert_eq!(a, e, "{label}: solution bags differ");
}
