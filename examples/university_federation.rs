//! Scenario: a federation of university endpoints (the LUBM workload).
//!
//! Generates N universities, each behind its own simulated endpoint, runs
//! the paper's LUBM queries through Lusail *and* the FedX baseline, and
//! compares wall-clock time and — the paper's central metric — the number
//! of remote requests each engine issues.
//!
//! Run with: `cargo run --release --example university_federation [-- N]`

use lusail_baselines::{FedX, FedXConfig, FederatedEngine};
use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::NetworkProfile;
use lusail_workloads::{federation_from_graphs, lubm};
use std::time::Instant;

fn main() {
    let universities: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let cfg = lubm::LubmConfig::with_universities(universities);
    let graphs = lubm::generate_all(&cfg);
    let total: usize = graphs.iter().map(|(_, g)| g.len()).sum();
    println!(
        "Federation: {universities} universities, {total} triples total, shared schema, \
         {:.0}% of degree edges cross endpoints\n",
        cfg.interlink_probability * 100.0
    );

    let lusail = LusailEngine::new(
        federation_from_graphs(graphs.clone(), NetworkProfile::local_cluster()),
        LusailConfig::default(),
    );
    let fedx = FedX::new(
        federation_from_graphs(graphs, NetworkProfile::local_cluster()),
        FedXConfig::default(),
    );

    println!(
        "{:<6}{:>10}{:>14}{:>14}{:>14}{:>14}",
        "query", "rows", "Lusail (ms)", "Lusail reqs", "FedX (ms)", "FedX reqs"
    );
    for q in lubm::queries() {
        let parsed = q.parse();

        lusail.federation().reset_traffic();
        let t = Instant::now();
        let lu_rows = lusail.execute(&parsed).expect("lusail succeeds").len();
        let lu_ms = t.elapsed().as_secs_f64() * 1000.0;
        let lu_reqs = lusail.federation().total_traffic().requests;

        fedx.federation().reset_traffic();
        let t = Instant::now();
        let fx_rows = fedx.execute(&parsed).expect("fedx succeeds").len();
        let fx_ms = t.elapsed().as_secs_f64() * 1000.0;
        let fx_reqs = fedx.federation().total_traffic().requests;

        assert_eq!(lu_rows, fx_rows, "engines must agree on {}", q.name);
        println!(
            "{:<6}{:>10}{:>14.2}{:>14}{:>14.2}{:>14}",
            q.name, lu_rows, lu_ms, lu_reqs, fx_ms, fx_reqs
        );
    }

    println!(
        "\nBecause every university shares one schema, FedX cannot form exclusive groups\n\
         and falls back to bound joins one triple pattern at a time — watch its request\n\
         column grow with the endpoint count while Lusail's stays near one request per\n\
         endpoint per subquery. Re-run with more universities to see the gap widen."
    );
}
