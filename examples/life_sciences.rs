//! Scenario: federated life-science datasets (the QFed workload — the
//! kind of linked-data integration the paper's introduction motivates).
//!
//! Four independently-maintained datasets — drugs, diseases, side effects,
//! drug labels — each behind its own endpoint, interlinked the way the
//! real DrugBank/Diseasome/Sider/DailyMed datasets are. The example runs
//! the C2P2 query family and shows how the F / O / B modifiers change
//! selectivity, result sizes, and the volume of data the federation ships.
//!
//! Run with: `cargo run --release --example life_sciences`

use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::NetworkProfile;
use lusail_workloads::{federation_from_graphs, qfed};
use std::time::Instant;

fn main() {
    let cfg = qfed::QfedConfig::default();
    let graphs = qfed::generate_all(&cfg);
    println!("Life-science federation:");
    for (name, g) in &graphs {
        println!("  {name:<10} {} triples", g.len());
    }

    let engine = LusailEngine::new(
        federation_from_graphs(graphs, NetworkProfile::local_cluster()),
        LusailConfig::default(),
    );

    println!(
        "\n{:<9}{:>8}{:>10}{:>8}{:>9}{:>12}{:>14}",
        "query", "rows", "time(ms)", "subqs", "delayed", "requests", "bytes back"
    );
    for q in qfed::queries() {
        let parsed = q.parse();
        engine.federation().reset_traffic();
        let t = Instant::now();
        let (rel, profile) = engine.execute_profiled(&parsed).expect("query succeeds");
        let ms = t.elapsed().as_secs_f64() * 1000.0;
        let traffic = engine.federation().total_traffic();
        println!(
            "{:<9}{:>8}{:>10.2}{:>8}{:>9}{:>12}{:>14}",
            q.name,
            rel.len(),
            ms,
            profile.subqueries,
            profile.delayed,
            traffic.requests,
            traffic.bytes_received
        );
    }

    println!(
        "\nReading the table: the F variants add a selective FILTER (fewer rows, less\n\
         data); the B variants fetch big description literals (same rows, far more\n\
         bytes) — in the paper those are the queries that time FedX and HiBISCuS out\n\
         while Lusail, which ships whole subqueries to the endpoints and joins only\n\
         what crosses datasets, stays in seconds."
    );
}
