//! HTTP federation: the quickstart's two-university setup, but with each
//! endpoint served by a real `lusail-server` over loopback HTTP instead of
//! an in-process simulation. The engine is identical — only the transport
//! behind the `SparqlEndpoint` trait changes — and so are the answers.
//!
//! Run with: `cargo run --release --example http_federation`

use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::{Federation, HttpEndpoint, SparqlEndpoint};
use lusail_rdf::{turtle, vocab, Term};
use lusail_server::{ServerConfig, ServerHandle, SparqlServer};
use lusail_store::Store;
use std::sync::Arc;

fn main() {
    let ep1_data = r#"
@prefix ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> .
@prefix u1: <http://univ1.example.org/> .

u1:MIT a ub:University ; ub:address "XXX" .
u1:Ann a ub:AssociateProfessor ; ub:PhDDegreeFrom u1:MIT .
u1:Bob a ub:GraduateStudent ; ub:advisor u1:Ann ; ub:takesCourse u1:ml .
u1:ml a ub:GraduateCourse .
"#;

    let ep2_data = r#"
@prefix ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> .
@prefix u1: <http://univ1.example.org/> .
@prefix u2: <http://univ2.example.org/> .

u2:CMU a ub:University ; ub:address "CCCC" .
u2:Joy a ub:AssociateProfessor ; ub:teacherOf u2:db ; ub:PhDDegreeFrom u2:CMU .
u2:Tim a ub:AssociateProfessor ; ub:teacherOf u2:os ; ub:PhDDegreeFrom u1:MIT .
u2:Ben a ub:AssociateProfessor ; ub:teacherOf u2:os ; ub:PhDDegreeFrom u2:CMU .
u2:Kim a ub:GraduateStudent ; ub:advisor u2:Joy , u2:Tim ;
       ub:takesCourse u2:db , u2:os .
u2:Lee a ub:GraduateStudent ; ub:advisor u2:Ben ; ub:takesCourse u2:os .
u2:db a ub:GraduateCourse .
u2:os a ub:GraduateCourse .
"#;

    // ---- Start one SPARQL server per dataset, on ephemeral ports -------
    let serve = |data: &str| -> ServerHandle {
        let graph = turtle::parse(data).expect("valid Turtle");
        SparqlServer::bind(
            "127.0.0.1:0",
            Store::from_graph(&graph),
            ServerConfig::default(),
        )
        .expect("bind loopback")
        .spawn()
    };
    let server1 = serve(ep1_data);
    let server2 = serve(ep2_data);
    println!("univ1 serving at {}", server1.url());
    println!("univ2 serving at {}", server2.url());

    // ---- Federate them through HTTP clients ----------------------------
    // These speak the W3C SPARQL Protocol, so they would work against any
    // standard endpoint (Fuseki, Virtuoso, …) just as well.
    let endpoint = |name: &str, url: &str| -> Arc<dyn SparqlEndpoint> {
        Arc::new(HttpEndpoint::new(name, url).expect("valid URL"))
    };
    let federation = Federation::new(vec![
        endpoint("univ1", &server1.url()),
        endpoint("univ2", &server2.url()),
    ]);
    let engine = LusailEngine::new(federation, LusailConfig::default());

    // Q_a from the paper's Figure 2, unchanged.
    let query = lusail_sparql::parse_query(&format!(
        r#"
PREFIX ub: <{ub}>
PREFIX rdf: <{rdf}>
SELECT ?S ?P ?U ?A WHERE {{
  ?S ub:advisor ?P .
  ?P ub:teacherOf ?C .
  ?S ub:takesCourse ?C .
  ?P ub:PhDDegreeFrom ?U .
  ?S rdf:type ub:GraduateStudent .
  ?P rdf:type ub:AssociateProfessor .
  ?C rdf:type ub:GraduateCourse .
  ?U ub:address ?A . }}"#,
        ub = vocab::ub::NS,
        rdf = vocab::rdf::NS,
    ))
    .expect("valid SPARQL");

    let results = engine.execute(&query).expect("query succeeds over HTTP");
    println!("\nQ_a answers over HTTP ({} rows):", results.len());
    for row in results.rows() {
        let cell = |t: &Option<Term>| t.as_ref().map_or("∅".to_string(), |t| t.to_string());
        println!(
            "  S={} P={} U={} A={}",
            cell(&row[0]),
            cell(&row[1]),
            cell(&row[2]),
            cell(&row[3])
        );
    }

    let traffic = engine.federation().total_traffic();
    println!(
        "\nwire traffic: {} HTTP requests, {} bytes received, {:.1?} on the network",
        traffic.requests, traffic.bytes_received, traffic.simulated_network_time
    );

    let tim = Term::iri("http://univ2.example.org/Tim");
    assert!(
        results.rows().iter().any(|r| r[1] == Some(tim.clone())),
        "the cross-endpoint answer about Tim must be found over HTTP too"
    );
    println!("✓ the interlink answer (Kim, Tim, MIT, \"XXX\") was found across HTTP endpoints");

    server1.shutdown();
    server2.shutdown();
    println!("✓ servers shut down cleanly");
}
