//! The SIGMOD 2017 demonstration, recreated.
//!
//! The demo paper ("A Demonstration of Lusail: Querying Linked Data at
//! Scale") walks attendees through three scenarios: (1) *see* how Lusail
//! decomposes a federated query — which variables are global, which triple
//! patterns travel together; (2) race Lusail against FedX on the same
//! federation and watch the request counters; (3) explore data
//! interactively. This example plays all three, and finishes with the
//! future-work features the paper closes on (early results and keyword
//! search).
//!
//! Run with: `cargo run --release --example demo_walkthrough`

use lusail_baselines::{FedX, FedXConfig, FederatedEngine};
use lusail_core::keyword::{keyword_search, KeywordConfig};
use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::{NetworkProfile, RequestHandler};
use lusail_workloads::{federation_from_graphs, lubm};
use std::time::Instant;

fn main() {
    banner("Scenario 1 — watch LADE decompose a query");
    let cfg = lubm::LubmConfig::with_universities(3);
    let graphs = lubm::generate_all(&cfg);
    let engine = LusailEngine::new(
        federation_from_graphs(graphs.clone(), NetworkProfile::local_cluster()),
        LusailConfig::default(),
    );

    let qa = lubm::query_qa();
    println!("The running-example query Q_a (Figure 2):\n{}\n", qa.text);
    let (results, profile) = engine.execute_profiled(&qa.parse()).expect("Q_a runs");
    println!("LADE's analysis of the 3-university federation:");
    println!("  global join variables  : {:?}", profile.gjvs);
    println!("  subqueries produced    : {}", profile.subqueries);
    println!("  locality check queries : {}", profile.check_queries);
    println!(
        "  SAPE delayed           : {} subquery(ies)",
        profile.delayed
    );
    println!(
        "  phase times            : source {:.2?} | analysis {:.2?} | execution {:.2?}",
        profile.source_selection, profile.analysis, profile.execution
    );
    println!("  answers                : {} rows\n", results.len());

    banner("Scenario 2 — race Lusail against FedX");
    let fedx = FedX::new(
        federation_from_graphs(graphs.clone(), NetworkProfile::local_cluster()),
        FedXConfig::default(),
    );
    println!(
        "{:<8}{:>14}{:>12}{:>14}{:>12}",
        "query", "Lusail (ms)", "(requests)", "FedX (ms)", "(requests)"
    );
    for q in lubm::queries() {
        let parsed = q.parse();
        engine.federation().reset_traffic();
        let t = Instant::now();
        let lrows = engine.execute(&parsed).expect("lusail").len();
        let lm = t.elapsed().as_secs_f64() * 1000.0;
        let lr = engine.federation().total_traffic().requests;

        fedx.federation().reset_traffic();
        let t = Instant::now();
        let frows = fedx.execute(&parsed).expect("fedx").len();
        let fm = t.elapsed().as_secs_f64() * 1000.0;
        let fr = fedx.federation().total_traffic().requests;
        assert_eq!(lrows, frows, "engines must agree");
        println!("{:<8}{:>14.2}{:>12}{:>14.2}{:>12}", q.name, lm, lr, fm, fr);
    }
    println!();

    banner("Scenario 3 — interactive exploration");
    // Early results: the first page of a browsing query, without computing
    // everything.
    let browse = lusail_sparql::parse_query(&format!(
        "PREFIX ub: <{}> SELECT ?s ?c WHERE {{ ?s ub:takesCourse ?c }} LIMIT 10",
        lusail_rdf::vocab::ub::NS
    ))
    .unwrap();
    let early = engine.execute_early(&browse, 10).expect("early results");
    println!(
        "execute_early: {} rows after evaluating {}/{} branch(es) — interactive paging",
        early.relation.len(),
        early.branches_run,
        early.branches_total
    );

    // Keyword search: the demo's "where do I even start?" entry point.
    let handler = RequestHandler::per_core();
    let fed = federation_from_graphs(graphs, NetworkProfile::local_cluster());
    let hits = keyword_search(
        &fed,
        &handler,
        &["GradStudent0_1"],
        &KeywordConfig::default(),
    )
    .expect("keyword search");
    println!(
        "keyword_search(\"GradStudent0_1\") → {} hit(s); top:",
        hits.len()
    );
    for hit in hits.iter().take(3) {
        println!(
            "  {} @ {} ({} matching triple(s))",
            hit.entity,
            fed.endpoint(hit.endpoint).name(),
            hit.match_count
        );
    }
    println!("\nDemo complete.");
}

fn banner(title: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}
