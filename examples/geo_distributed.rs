//! Scenario: a geo-distributed Linked Open Data federation (the paper's
//! §5.3 Azure deployment, on the simulated WAN profile).
//!
//! Deploys the 13 LargeRDFBench-style endpoints behind a high-latency,
//! low-bandwidth network, then demonstrates the two knobs that matter at
//! WAN latencies: the delayed-subquery threshold (Figure 13) and the
//! ASK/check/count caches (Figure 12). Finally it runs C5 — the
//! disjoint-subgraphs-joined-by-a-filter query that only Lusail supports.
//!
//! Run with: `cargo run --release --example geo_distributed`

use lusail_core::{DelayThreshold, LusailConfig, LusailEngine};
use lusail_federation::NetworkProfile;
use lusail_workloads::{federation_from_graphs, largerdf};
use std::time::Instant;

fn main() {
    let cfg = largerdf::LargeRdfConfig::default();
    let graphs = largerdf::generate_all(&cfg);
    let geo = NetworkProfile::geo_distributed();
    println!(
        "Geo-distributed federation: {} endpoints, {} triples, {:?} per request\n",
        graphs.len(),
        graphs.iter().map(|(_, g)| g.len()).sum::<usize>(),
        geo.latency
    );

    // ---- Delay thresholds under WAN latency (Figure 13) ----------------
    let sample = ["S13", "C1", "B8"];
    println!("Delay-threshold comparison on {sample:?} (total ms):");
    for threshold in [
        DelayThreshold::Mu,
        DelayThreshold::MuSigma,
        DelayThreshold::Mu2Sigma,
        DelayThreshold::OutliersOnly,
    ] {
        let engine = LusailEngine::new(
            federation_from_graphs(graphs.clone(), geo),
            LusailConfig {
                delay_threshold: threshold,
                ..Default::default()
            },
        );
        let queries: Vec<_> = largerdf::all_queries()
            .into_iter()
            .filter(|q| sample.contains(&q.name))
            .map(|q| q.parse())
            .collect();
        // Warm-up, then measure.
        for q in &queries {
            engine.execute(q).unwrap();
        }
        let t = Instant::now();
        for q in &queries {
            engine.execute(q).unwrap();
        }
        println!(
            "  {:<10} {:>9.1} ms",
            threshold.label(),
            t.elapsed().as_secs_f64() * 1000.0
        );
    }

    // ---- Cache effect (Figure 12) ---------------------------------------
    let c9 = largerdf::all_queries()
        .into_iter()
        .find(|q| q.name == "C9")
        .unwrap()
        .parse();
    let engine = LusailEngine::new(
        federation_from_graphs(graphs.clone(), geo),
        LusailConfig::default(),
    );
    let t = Instant::now();
    engine.execute(&c9).unwrap();
    let cold = t.elapsed();
    let t = Instant::now();
    engine.execute(&c9).unwrap();
    let warm = t.elapsed();
    println!(
        "\nC9 cold (empty caches) vs warm (ASK/check/count cached): {:.1} ms → {:.1} ms",
        cold.as_secs_f64() * 1000.0,
        warm.as_secs_f64() * 1000.0
    );

    // ---- A query only Lusail supports (C5) ------------------------------
    let c5 = largerdf::all_queries()
        .into_iter()
        .find(|q| q.name == "C5")
        .unwrap()
        .parse();
    let rel = engine.execute(&c5).unwrap();
    println!(
        "\nC5 (two disjoint subgraphs joined by FILTER(?w = ?m)): {} rows — a query the\n\
         FedX/SPLENDID/HiBISCuS baselines reject as unsupported.",
        rel.len()
    );
}
