//! Quickstart: build a two-university federation by hand (the paper's
//! Figure 1), run the running-example query Q_a (Figure 2) through Lusail,
//! and inspect what LADE and SAPE did.
//!
//! Run with: `cargo run --release --example quickstart`

use lusail_core::{LusailConfig, LusailEngine};
use lusail_federation::{Federation, NetworkProfile, SimulatedEndpoint, SparqlEndpoint};
use lusail_rdf::{turtle, vocab, Term};
use lusail_store::Store;
use std::sync::Arc;

fn main() {
    // ---- Endpoint 1 (univ1): MIT, its address, and a professor --------
    // Datasets are plain Turtle; each endpoint parses and indexes its own.
    let ep1_data = r#"
@prefix ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> .
@prefix u1: <http://univ1.example.org/> .

u1:MIT a ub:University ; ub:address "XXX" .
u1:Ann a ub:AssociateProfessor ; ub:PhDDegreeFrom u1:MIT .
u1:Bob a ub:GraduateStudent ; ub:advisor u1:Ann ; ub:takesCourse u1:ml .
u1:ml a ub:GraduateCourse .
"#;

    // ---- Endpoint 2 (univ2): CMU, students, and the interlink ---------
    // Tim's PhD is from MIT: the red dotted edge of Figure 1. Only a
    // federated engine that traverses it finds Tim's alma mater address.
    let ep2_data = r#"
@prefix ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> .
@prefix u1: <http://univ1.example.org/> .
@prefix u2: <http://univ2.example.org/> .

u2:CMU a ub:University ; ub:address "CCCC" .
u2:Joy a ub:AssociateProfessor ; ub:teacherOf u2:db ; ub:PhDDegreeFrom u2:CMU .
u2:Tim a ub:AssociateProfessor ; ub:teacherOf u2:os ; ub:PhDDegreeFrom u1:MIT .
u2:Ben a ub:AssociateProfessor ; ub:teacherOf u2:os ; ub:PhDDegreeFrom u2:CMU .
u2:Kim a ub:GraduateStudent ; ub:advisor u2:Joy , u2:Tim ;
       ub:takesCourse u2:db , u2:os .
u2:Lee a ub:GraduateStudent ; ub:advisor u2:Ben ; ub:takesCourse u2:os .
u2:db a ub:GraduateCourse .
u2:os a ub:GraduateCourse .
"#;

    let make_endpoint = |name: &str, data: &str| -> Arc<dyn SparqlEndpoint> {
        let graph = turtle::parse(data).expect("valid Turtle");
        Arc::new(SimulatedEndpoint::new(
            name,
            Store::from_graph(&graph),
            NetworkProfile::local_cluster(),
        ))
    };
    let federation = Federation::new(vec![
        make_endpoint("univ1", ep1_data),
        make_endpoint("univ2", ep2_data),
    ]);

    // ---- The federated engine -----------------------------------------
    let engine = LusailEngine::new(federation, LusailConfig::default());

    // Q_a: students taking a course with their advisor, plus the advisor's
    // alma mater and its address (Figure 2).
    let query = lusail_sparql::parse_query(&format!(
        r#"
PREFIX ub: <{ub}>
PREFIX rdf: <{rdf}>
SELECT ?S ?P ?U ?A WHERE {{
  ?S ub:advisor ?P .
  ?P ub:teacherOf ?C .
  ?S ub:takesCourse ?C .
  ?P ub:PhDDegreeFrom ?U .
  ?S rdf:type ub:GraduateStudent .
  ?P rdf:type ub:AssociateProfessor .
  ?C rdf:type ub:GraduateCourse .
  ?U ub:address ?A . }}"#,
        ub = vocab::ub::NS,
        rdf = vocab::rdf::NS,
    ))
    .expect("valid SPARQL");

    let (results, profile) = engine.execute_profiled(&query).expect("query succeeds");

    println!("Q_a answers ({} rows):", results.len());
    for row in results.rows() {
        let cell = |t: &Option<Term>| t.as_ref().map_or("∅".to_string(), |t| t.to_string());
        println!(
            "  S={} P={} U={} A={}",
            cell(&row[0]),
            cell(&row[1]),
            cell(&row[2]),
            cell(&row[3])
        );
    }

    println!("\nWhat Lusail did:");
    println!(
        "  global join variables : {:?}  (paper: ?U and ?P)",
        profile.gjvs
    );
    println!("  subqueries            : {}", profile.subqueries);
    println!("  delayed subqueries    : {}", profile.delayed);
    println!("  check queries sent    : {}", profile.check_queries);
    println!(
        "  phases                : source {:.2?}, analysis {:.2?}, execution {:.2?}",
        profile.source_selection, profile.analysis, profile.execution
    );
    println!(
        "  endpoint traffic      : {} requests, {} bytes returned",
        engine.federation().total_traffic().requests,
        engine.federation().total_traffic().bytes_received,
    );

    // The interlink answer must be present: (Kim, Tim, MIT, "XXX").
    let tim = Term::iri("http://univ2.example.org/Tim");
    assert!(
        results.rows().iter().any(|r| r[1] == Some(tim.clone())),
        "the cross-endpoint answer about Tim must be found"
    );
    println!("\n✓ the interlink answer (Kim, Tim, MIT, \"XXX\") was found across endpoints");
}
